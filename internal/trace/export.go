package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ChromeJSON renders the trace in the chrome://tracing JSON array format
// (load via chrome://tracing or https://ui.perfetto.dev). Durations and
// timestamps are virtual-clock values; ts/dur are microseconds with
// nanosecond precision rendered via integer math, so output is
// byte-identical for identical span sets. Actors become threads, sorted
// by name.
func (t *Tracer) ChromeJSON() []byte { return t.ChromeJSONFor(nil) }

// ChromeJSONFor renders only the actors whose names pass keep (nil keeps
// all). Deterministic golden digests use it to restrict the export to
// the deterministic actors — the front-ends — excluding back-end
// replayer spans, whose grouping depends on goroutine scheduling.
func (t *Tracer) ChromeJSONFor(keep func(name string) bool) []byte {
	var b strings.Builder
	b.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	first := true
	emit := func(s string) {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		b.WriteString(s)
	}
	tid := -1
	for _, a := range t.Actors() {
		if keep != nil && !keep(a.Name()) {
			continue
		}
		tid++
		emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%q}}`, tid, a.Name()))
		for _, sp := range a.Spans() {
			switch sp.Kind {
			case KindDoorbell, KindOverlapSaved, KindFailover:
				emit(fmt.Sprintf(`{"name":%q,"ph":"i","s":"t","ts":%s,"pid":1,"tid":%d,"args":{"arg":%d}}`,
					sp.Kind.String(), usec(sp.Start), tid, sp.Arg))
			default:
				emit(fmt.Sprintf(`{"name":%q,"ph":"X","ts":%s,"dur":%s,"pid":1,"tid":%d,"args":{"arg":%d,"parent":%d}}`,
					sp.Kind.String(), usec(sp.Start), usec(sp.Dur), tid, sp.Arg, sp.Parent))
			}
		}
	}
	b.WriteString("\n]}\n")
	return []byte(b.String())
}

// usec formats ns as microseconds with exactly three decimals, using
// integer math only (no float formatting) for deterministic output.
func usec(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return neg + strconv.FormatInt(ns/1000, 10) + "." + fmt.Sprintf("%03d", ns%1000)
}

// Digest is a hex SHA-256 over the exported chrome JSON: a compact
// fingerprint for golden-trace regression tests.
func (t *Tracer) Digest() string { return t.DigestFor(nil) }

// DigestFor digests only the actors whose names pass keep (nil keeps all).
func (t *Tracer) DigestFor(keep func(name string) bool) string {
	sum := sha256.Sum256(t.ChromeJSONFor(keep))
	return hex.EncodeToString(sum[:])
}

// pathStat aggregates spans sharing the same ancestry path of kinds.
type pathStat struct {
	path  string
	depth int
	count int64
	total int64
	self  int64
}

// FlameSummary renders a text flame graph: spans aggregated by their
// kind-path (op > oplog.flush > verb.write), per actor, with counts,
// total and self virtual time. Deterministic: actors sorted by name,
// paths in first-appearance order of the underlying spans.
func (t *Tracer) FlameSummary() string {
	var b strings.Builder
	for _, a := range t.Actors() {
		spans := a.Spans()
		if len(spans) == 0 {
			continue
		}
		fmt.Fprintf(&b, "=== %s (elapsed %dns, overlap saved %dns) ===\n", a.Name(), a.Elapsed(), a.OverlapNS())

		// Resolve each span's kind-path via parent links.
		paths := make([]string, len(spans))
		depths := make([]int, len(spans))
		childNS := make([]int64, len(spans))
		for i, sp := range spans {
			if sp.Parent >= 0 {
				paths[i] = paths[sp.Parent] + " > " + sp.Kind.String()
				depths[i] = depths[sp.Parent] + 1
				childNS[sp.Parent] += sp.Dur
			} else {
				paths[i] = sp.Kind.String()
			}
		}
		agg := map[string]*pathStat{}
		var order []string
		for i, sp := range spans {
			ps := agg[paths[i]]
			if ps == nil {
				ps = &pathStat{path: paths[i], depth: depths[i]}
				agg[paths[i]] = ps
				order = append(order, paths[i])
			}
			ps.count++
			ps.total += sp.Dur
			self := sp.Dur - childNS[i]
			if self > 0 {
				ps.self += self
			}
		}
		sort.Strings(order)
		fmt.Fprintf(&b, "%-52s %10s %14s %14s\n", "path", "count", "total", "self")
		for _, p := range order {
			ps := agg[p]
			indent := strings.Repeat("  ", ps.depth)
			fmt.Fprintf(&b, "%-52s %10d %14d %14d\n", indent+lastKind(ps.path), ps.count, ps.total, ps.self)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func lastKind(path string) string {
	if i := strings.LastIndex(path, " > "); i >= 0 {
		return path[i+3:]
	}
	return path
}
