// Package trace records per-operation spans on the deterministic virtual
// clock. Every actor (front-end, back-end, archive) owns an ActorTracer;
// spans carry virtual-clock timestamps, parent links and a kind, so an
// exported trace shows exactly where the virtual time of an operation
// went: op-log append, commit, cache-miss fetch, verb post/doorbell/
// retire, replay, mirror forward, retry/failover.
//
// Because timestamps come from the virtual clock and span identifiers are
// actor-local, a trace of a seeded run is byte-identical across runs and
// schedules (for frontend actors, whose clocks the simulation drives
// deterministically) — the exporter in export.go leans on that to act as
// a regression oracle.
//
// The disabled path is a nil *ActorTracer: every method nil-checks its
// receiver and returns immediately, so hot paths pay one branch and zero
// allocations when tracing is off.
package trace

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"asymnvm/internal/clock"
	"asymnvm/internal/stats"
)

// Kind identifies what a span or event measured.
type Kind uint8

// Span kinds. Kinds marked (event) are instantaneous markers.
const (
	KindOp           Kind = iota // one data-structure write operation
	KindOpLogFlush               // op-log append flush (durability point)
	KindCommit                   // rnvm_tx_write flush of memory logs
	KindFetch                    // remote read serving a cache miss
	KindCacheHit                 // DRAM cache / overlay hit
	KindVerbRead                 // synchronous RDMA read round trip
	KindVerbWrite                // synchronous RDMA write round trip
	KindVerbAtomic               // CAS / fetch-add / 64-bit load/store
	KindPost                     // work request posted to the send queue
	KindDoorbell                 // doorbell rung (event; arg = group bytes)
	KindRetireWait               // un-hidden wait for a posted completion
	KindOverlapSaved             // fabric ns hidden by overlap (event; arg = ns)
	KindRPC                      // ring RPC exchange (malloc/free)
	KindRetryBackoff             // virtual-clock backoff before a retry
	KindFailover                 // endpoint retarget (event; arg = injected err count)
	KindReplay                   // back-end: applying one committed tx
	KindMirrorFwd                // back-end: forwarding bytes to mirrors
	KindCPU                      // fixed per-op CPU charge
	KindCheckpoint               // back-end: compaction checkpoint (apply+truncate)
	KindStripeAcquire            // ordered acquisition of one stripe's writer lock
	KindMirrorRead               // read served from a mirror replica (arg = stale epochs)
	KindCutover                  // migration cutover: map version flip (event; arg = new version)
	NumKinds                     // sentinel
)

var kindNames = [NumKinds]string{
	"op", "oplog.flush", "commit", "fetch", "cache.hit",
	"verb.read", "verb.write", "verb.atomic",
	"post", "doorbell", "retire.wait", "overlap.saved",
	"rpc", "retry.backoff", "failover", "replay", "mirror.fwd", "cpu",
	"checkpoint", "stripe.acquire", "mirror.read", "cutover",
}

// String names the kind as it appears in exported traces.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// kindPhase maps span kinds onto the stats phase breakdown. noPhase marks
// kinds that carry no duration (pure events).
const noPhase = stats.NumPhases

var kindPhase = [NumKinds]stats.Phase{
	KindOp:           stats.PhaseOp,
	KindOpLogFlush:   stats.PhaseOpLogFlush,
	KindCommit:       stats.PhaseCommit,
	KindFetch:        stats.PhaseFetch,
	KindCacheHit:     stats.PhaseCacheHit,
	KindVerbRead:     stats.PhaseVerb,
	KindVerbWrite:    stats.PhaseVerb,
	KindVerbAtomic:   stats.PhaseVerb,
	KindPost:         stats.PhasePost,
	KindDoorbell:     noPhase,
	KindRetireWait:   stats.PhaseRetireWait,
	KindOverlapSaved: noPhase,
	KindRPC:          stats.PhaseRPC,
	KindRetryBackoff: stats.PhaseRetry,
	KindFailover:     noPhase,
	KindReplay:       stats.PhaseReplay,
	KindMirrorFwd:    stats.PhaseMirror,
	KindCPU:           stats.PhaseCPU,
	KindCheckpoint:    stats.PhaseReplay,
	KindStripeAcquire: stats.PhaseOp,
	KindMirrorRead:    stats.PhaseFetch,
	KindCutover:       noPhase,
}

// attributable reports span kinds that round trips are attributed to:
// the innermost open span of an attributable kind is charged for each
// round trip the fabric pays (round-trip attribution).
var attributable = [NumKinds]bool{
	KindOp: true, KindOpLogFlush: true, KindCommit: true,
	KindFetch: true, KindRPC: true, KindRetryBackoff: true,
}

// Span is one recorded interval (or event, when Dur == 0 and the kind is
// an event kind) on an actor's virtual clock.
type Span struct {
	Kind   Kind
	Start  int64 // virtual ns at Begin
	Dur    int64 // virtual ns between Begin and End
	Parent int32 // index of enclosing span in the same actor, -1 at top level
	Arg    uint64
}

// frame is one entry of the open-span stack.
type frame struct {
	idx     int32 // index into spans
	kind    Kind
	childNS int64 // virtual ns consumed by already-closed children
}

// ActorTracer records the spans of a single actor. All methods are safe
// on a nil receiver (tracing disabled) and are internally locked so a
// concurrent exporter (e.g. the /debug/trace endpoint) sees a consistent
// snapshot; an actor itself must still call Begin/End from one goroutine.
type ActorTracer struct {
	mu      sync.Mutex
	name    string
	clk     clock.Clock
	st      *stats.Stats
	startNS int64
	spans   []Span
	stack   []frame
	selfNS  [NumKinds]int64 // per-kind self time (excl. nested spans)
	verbs   [NumKinds]int64 // round trips attributed per kind
	overlap int64           // sum of KindOverlapSaved args
}

// Begin opens a span of kind k at the current virtual time.
func (a *ActorTracer) Begin(k Kind) { a.BeginArg(k, 0) }

// BeginArg opens a span with an argument (bytes, address, …).
//
// Operations never nest: opening a KindOp span while a previous one is
// still dangling (an operation bailed out on an error path without
// reaching its EndOp) first unwinds the stack through the stale frame,
// so one failed operation cannot mis-nest the rest of the trace.
func (a *ActorTracer) BeginArg(k Kind, arg uint64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	if k == KindOp {
		for i := len(a.stack) - 1; i >= 0; i-- {
			if a.stack[i].kind == KindOp {
				for len(a.stack) > i {
					a.endLocked()
				}
				break
			}
		}
	}
	idx := int32(len(a.spans))
	parent := int32(-1)
	if n := len(a.stack); n > 0 {
		parent = a.stack[n-1].idx
	}
	a.spans = append(a.spans, Span{Kind: k, Start: int64(a.clk.Now()), Parent: parent, Arg: arg})
	a.stack = append(a.stack, frame{idx: idx, kind: k})
	a.mu.Unlock()
}

// End closes the innermost open span, computing its duration from the
// virtual clock, accounting self time, and feeding the stats phase
// histogram. End on an empty stack is a no-op.
func (a *ActorTracer) End() {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.endLocked()
	a.mu.Unlock()
}

// endLocked closes the innermost open span. Caller holds a.mu.
func (a *ActorTracer) endLocked() {
	n := len(a.stack)
	if n == 0 {
		return
	}
	fr := a.stack[n-1]
	a.stack = a.stack[:n-1]
	sp := &a.spans[fr.idx]
	sp.Dur = int64(a.clk.Now()) - sp.Start
	self := sp.Dur - fr.childNS
	a.closeAccount(fr.kind, sp.Dur, self)
}

// Charge records a complete span of duration d ending now: the caller
// advanced the virtual clock by d inline (CPU charge, DRAM access, retry
// backoff, WR issue) and attributes it to kind k.
func (a *ActorTracer) Charge(k Kind, d time.Duration) {
	if a == nil || d <= 0 {
		return
	}
	a.mu.Lock()
	now := int64(a.clk.Now())
	parent := int32(-1)
	if n := len(a.stack); n > 0 {
		parent = a.stack[n-1].idx
	}
	a.spans = append(a.spans, Span{Kind: k, Start: now - int64(d), Dur: int64(d), Parent: parent})
	a.closeAccount(k, int64(d), int64(d))
	a.mu.Unlock()
}

// Event records an instantaneous marker (doorbell, failover, overlap
// credit). Events consume no actor time.
func (a *ActorTracer) Event(k Kind, arg uint64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	parent := int32(-1)
	if n := len(a.stack); n > 0 {
		parent = a.stack[n-1].idx
	}
	a.spans = append(a.spans, Span{Kind: k, Start: int64(a.clk.Now()), Parent: parent, Arg: arg})
	if k == KindOverlapSaved {
		a.overlap += int64(arg)
	}
	a.mu.Unlock()
}

// CountVerb attributes one fabric round trip to the innermost open span
// of an attributable kind (op / op-log flush / commit / fetch / RPC).
func (a *ActorTracer) CountVerb() {
	if a == nil {
		return
	}
	a.mu.Lock()
	for i := len(a.stack) - 1; i >= 0; i-- {
		k := a.stack[i].kind
		if attributable[k] {
			a.verbs[k]++
			if a.st != nil {
				a.st.Phase[kindPhase[k]].Verbs.Add(1)
			}
			break
		}
	}
	a.mu.Unlock()
}

// closeAccount books a closed span: parent child-time, per-kind self
// time, and the stats phase histogram. Caller holds a.mu.
func (a *ActorTracer) closeAccount(k Kind, dur, self int64) {
	if n := len(a.stack); n > 0 {
		a.stack[n-1].childNS += dur
	}
	if self < 0 {
		self = 0
	}
	a.selfNS[k] += self
	if a.st != nil {
		if p := kindPhase[k]; p != noPhase {
			ps := &a.st.Phase[p]
			ps.Hist.Observe(dur)
			ps.SelfNS.Add(self)
		}
	}
}

// Elapsed is the actor's virtual time since the tracer was created.
func (a *ActorTracer) Elapsed() int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return int64(a.clk.Now()) - a.startNS
}

// SelfNS returns per-kind self time in virtual ns (a copy).
func (a *ActorTracer) SelfNS() [NumKinds]int64 {
	if a == nil {
		return [NumKinds]int64{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.selfNS
}

// VerbsByKind returns the round trips attributed per kind (a copy).
func (a *ActorTracer) VerbsByKind() [NumKinds]int64 {
	if a == nil {
		return [NumKinds]int64{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.verbs
}

// OverlapNS is the total fabric latency hidden by overlap, as traced.
func (a *ActorTracer) OverlapNS() int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.overlap
}

// Spans returns a snapshot copy of the recorded spans.
func (a *ActorTracer) Spans() []Span {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Span, len(a.spans))
	copy(out, a.spans)
	return out
}

// Name is the actor's registered name.
func (a *ActorTracer) Name() string {
	if a == nil {
		return ""
	}
	return a.name
}

// Stats is the actor's stats sink (may be nil). Live metrics endpoints
// use it to enumerate per-actor counters without separate plumbing.
func (a *ActorTracer) Stats() *stats.Stats {
	if a == nil {
		return nil
	}
	return a.st
}

// Tracer is the registry of per-actor tracers for one run. A nil *Tracer
// is the disabled tracer: Actor returns nil and every downstream call is
// a cheap no-op.
type Tracer struct {
	mu     sync.Mutex
	actors map[string]*ActorTracer
}

// New creates an enabled tracer.
func New() *Tracer {
	return &Tracer{actors: make(map[string]*ActorTracer)}
}

// Actor returns the tracer for the named actor, creating it on first use
// with the actor's clock and optional stats sink. Returns nil when the
// Tracer itself is nil (tracing disabled).
func (t *Tracer) Actor(name string, clk clock.Clock, st *stats.Stats) *ActorTracer {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if a, ok := t.actors[name]; ok {
		if a.clk == clk && a.st == st {
			return a
		}
		// A fresh incarnation (new clock or stats) registering under a
		// taken name gets a numbered alias, so a long-lived tracer that
		// spans several runs keeps incarnations apart instead of mixing
		// their spans on one timeline.
		base := name
		for n := 2; ; n++ {
			name = fmt.Sprintf("%s#%d", base, n)
			if _, ok := t.actors[name]; !ok {
				break
			}
		}
	}
	if clk == nil {
		clk = clock.Zero
	}
	a := &ActorTracer{name: name, clk: clk, st: st, startNS: int64(clk.Now())}
	t.actors[name] = a
	return a
}

// Actors returns the registered actor tracers sorted by name, so export
// order is deterministic.
func (t *Tracer) Actors() []*ActorTracer {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*ActorTracer, 0, len(t.actors))
	for _, a := range t.actors {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
