// Package fault is the deterministic fault-injection plane for the
// simulated AsymNVM cluster.
//
// A Plane is created from one seed and owns a set of named Injectors, one
// per logical connection (front-end → back-end endpoint). Each injector
// derives its own RNG from the plane seed and its name, so the fault
// stream seen by one connection is a pure function of (seed, name) — it
// does not depend on goroutine interleaving with other connections. Every
// injected fault is recorded in an event log ordered by (source, per-source
// sequence number); two runs with the same seed and the same workload
// produce identical logs, which is the reproducibility contract the chaos
// harness (cmd/asymnvm-chaos) checks.
//
// The plane covers the failure vocabulary of the paper's §7 plus the
// fabric faults client-driven recovery must absorb:
//
//   - verb drop / mid-transfer truncation / delay (per-connection, random
//     at configured rates) via rdma.Endpoint.SetFault;
//   - network partition between one front-end/back-end pair (a window of
//     consecutive verb failures);
//   - endpoint disconnect (fatal — forces the front-end's failover path);
//   - back-end crash/restart and mirror promotion (scheduled by the chaos
//     harness through the cluster layer, recorded here);
//   - mirror replication lag (raw writes and archived ops buffered for a
//     number of replication kicks before reaching the sink).
package fault

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"time"

	"asymnvm/internal/backend"
	"asymnvm/internal/rdma"
)

// Kind classifies one recorded fault event.
type Kind int

// Event kinds.
const (
	KindDrop Kind = iota
	KindTruncate
	KindDelay
	KindPartition
	KindDisconnect
	KindSched // cluster-level scheduled action (crash, restart, promote)
)

// String names the kind for event logs.
func (k Kind) String() string {
	switch k {
	case KindDrop:
		return "drop"
	case KindTruncate:
		return "truncate"
	case KindDelay:
		return "delay"
	case KindPartition:
		return "partition"
	case KindDisconnect:
		return "disconnect"
	case KindSched:
		return "sched"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one recorded injection.
type Event struct {
	Source string // injector name, or "sched" for cluster-level actions
	Seq    uint64 // per-source sequence number
	Kind   Kind
	Op     rdma.Op
	Off    uint64
	N      int
	Detail string
}

// String renders the event as one reproducibility-log line.
func (e Event) String() string {
	if e.Kind == KindSched {
		return fmt.Sprintf("%s #%d %s", e.Source, e.Seq, e.Detail)
	}
	s := fmt.Sprintf("%s #%d %s op=%v off=%d n=%d", e.Source, e.Seq, e.Kind, e.Op, e.Off, e.N)
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// VerbFaults configures the random per-verb fault mix of one injector.
// Probabilities are cumulative-compared against a single RNG draw per
// verb, so changing one rate does not shift which verbs the others hit.
type VerbFaults struct {
	DropProb     float64       // verb fails, nothing reached the target
	TruncateProb float64       // write fails, a random prefix stays volatile
	DelayProb    float64       // verb succeeds after extra latency
	Delay        time.Duration // latency charged on a delay fault (default 2µs)
}

// Plane owns the injectors, mirror-lag sinks, and the shared event log.
type Plane struct {
	seed int64

	mu        sync.Mutex
	injectors map[string]*Injector
	events    []Event
	schedSeq  uint64
	mirrorLag int
	lagged    []*LagSink
}

// NewPlane creates a fault plane seeded with seed.
func NewPlane(seed int64) *Plane {
	return &Plane{seed: seed, injectors: make(map[string]*Injector)}
}

// Seed returns the plane's seed.
func (p *Plane) Seed() int64 { return p.seed }

// Injector returns the injector registered under name, creating it (with
// an RNG derived from the plane seed and the name) on first use.
func (p *Plane) Injector(name string) *Injector {
	p.mu.Lock()
	defer p.mu.Unlock()
	if in, ok := p.injectors[name]; ok {
		return in
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	in := &Injector{
		p:    p,
		name: name,
		rng:  rand.New(rand.NewSource(p.seed ^ int64(h.Sum64()))),
	}
	p.injectors[name] = in
	return in
}

// Record logs a cluster-level scheduled action (crash, restart, promote,
// partition window) under the synthetic "sched" source.
func (p *Plane) Record(detail string) {
	p.mu.Lock()
	p.events = append(p.events, Event{Source: "sched", Seq: p.schedSeq, Kind: KindSched, Detail: detail})
	p.schedSeq++
	p.mu.Unlock()
}

func (p *Plane) record(e Event) {
	p.mu.Lock()
	p.events = append(p.events, e)
	p.mu.Unlock()
}

// Events returns a copy of the event log, ordered by (source, seq). The
// per-source order is the injection order; the cross-source order is a
// deterministic convention, so the rendered log is reproducible even when
// connections race each other in host time.
func (p *Plane) Events() []Event {
	p.mu.Lock()
	out := make([]Event, len(p.events))
	copy(out, p.events)
	p.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Source != out[j].Source {
			return out[i].Source < out[j].Source
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// EventLog renders Events as one line per event.
func (p *Plane) EventLog() []string {
	evs := p.Events()
	out := make([]string, len(evs))
	for i, e := range evs {
		out[i] = e.String()
	}
	return out
}

// Digest is an FNV-1a hash over the rendered event log — a compact value
// two runs can compare to prove they saw the same fault interleaving.
func (p *Plane) Digest() uint64 {
	h := fnv.New64a()
	for _, line := range p.EventLog() {
		h.Write([]byte(line))
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}

// SetMirrorLag makes WrapMirror interpose a lag queue that withholds
// replicated data for the given number of replication kicks. Zero (the
// default) disables lag.
func (p *Plane) SetMirrorLag(kicks int) {
	p.mu.Lock()
	p.mirrorLag = kicks
	p.mu.Unlock()
}

// MirrorLag reports the configured lag in kicks.
func (p *Plane) MirrorLag() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.mirrorLag
}

// WrapMirror wraps a mirror sink with a lag queue (when lag is configured)
// and registers it so DrainMirrors can flush it. With zero lag the sink is
// returned unchanged. Meant to be passed to backend.Backend.WrapMirrors.
func (p *Plane) WrapMirror(s backend.MirrorSink) backend.MirrorSink {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.mirrorLag <= 0 {
		return s
	}
	ls := NewLagSink(s, p.mirrorLag)
	p.lagged = append(p.lagged, ls)
	return ls
}

// DrainMirrors flushes every registered lag queue into its sink. The
// cluster calls this before promoting a replica: promotion models the
// mirror having acknowledged all safe transactions, so the queues must be
// empty first.
func (p *Plane) DrainMirrors() {
	p.mu.Lock()
	lagged := append([]*LagSink(nil), p.lagged...)
	p.mu.Unlock()
	for _, ls := range lagged {
		ls.Drain()
	}
}

// DropMirrors drains and then forgets the registered lag queues. Restart
// paths call it before re-attaching mirrors with a fresh full sync, so
// stale queued writes cannot later corrupt the resynced replica.
func (p *Plane) DropMirrors() {
	p.DrainMirrors()
	p.mu.Lock()
	p.lagged = nil
	p.mu.Unlock()
}

// Injector produces the fault stream for one named connection.
type Injector struct {
	p    *Plane
	name string

	mu           sync.Mutex
	rng          *rand.Rand
	cfg          VerbFaults
	seq          uint64
	partition    int
	disconnected bool
}

// Name returns the injector's registered name.
func (in *Injector) Name() string { return in.name }

// SetVerbFaults installs the random fault mix. The probabilities must sum
// to at most 1.
func (in *Injector) SetVerbFaults(cfg VerbFaults) {
	in.mu.Lock()
	in.cfg = cfg
	in.mu.Unlock()
}

// Partition fails the next n verbs with a transient error, modelling a
// network partition between this front-end/back-end pair that heals after
// the window. Keep n below the front-end's retry budget if the partition
// should be absorbed by retries rather than surface as an error.
func (in *Injector) Partition(n int) {
	in.mu.Lock()
	in.partition = n
	in.mu.Unlock()
}

// Disconnect makes every subsequent verb fail with rdma.ErrDisconnected
// until Reconnect — the fatal fault that forces the front-end's failover
// path.
func (in *Injector) Disconnect() {
	in.mu.Lock()
	in.disconnected = true
	in.mu.Unlock()
}

// Reconnect clears a Disconnect.
func (in *Injector) Reconnect() {
	in.mu.Lock()
	in.disconnected = false
	in.mu.Unlock()
}

// Disconnected reports whether the injector is in the disconnected state.
func (in *Injector) Disconnected() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.disconnected
}

// recordLocked emits one event; in.mu must be held (it owns seq).
func (in *Injector) recordLocked(k Kind, op rdma.Op, off uint64, n int, detail string) {
	in.p.record(Event{Source: in.name, Seq: in.seq, Kind: k, Op: op, Off: off, N: n, Detail: detail})
	in.seq++
}

// Hook returns the rdma.FaultHook implementing this injector's stream.
func (in *Injector) Hook() rdma.FaultHook {
	return func(op rdma.Op, off uint64, n int) rdma.Fault {
		in.mu.Lock()
		defer in.mu.Unlock()
		if in.disconnected {
			in.recordLocked(KindDisconnect, op, off, n, "")
			return rdma.Fault{Err: rdma.ErrDisconnected}
		}
		if in.partition > 0 {
			in.partition--
			in.recordLocked(KindPartition, op, off, n, fmt.Sprintf("left=%d", in.partition))
			return rdma.Fault{Err: rdma.ErrInjected}
		}
		c := in.cfg
		if c.DropProb <= 0 && c.TruncateProb <= 0 && c.DelayProb <= 0 {
			return rdma.Fault{}
		}
		r := in.rng.Float64()
		switch {
		case r < c.DropProb:
			in.recordLocked(KindDrop, op, off, n, "")
			return rdma.Fault{Err: rdma.ErrInjected}
		case r < c.DropProb+c.TruncateProb:
			trunc := 0
			if op == rdma.OpWrite && n > 1 {
				trunc = in.rng.Intn(n)
			}
			in.recordLocked(KindTruncate, op, off, n, fmt.Sprintf("trunc=%d", trunc))
			return rdma.Fault{Err: rdma.ErrInjected, Truncate: trunc}
		case r < c.DropProb+c.TruncateProb+c.DelayProb:
			d := c.Delay
			if d <= 0 {
				d = 2 * time.Microsecond
			}
			in.recordLocked(KindDelay, op, off, n, d.String())
			return rdma.Fault{Delay: d}
		}
		return rdma.Fault{}
	}
}
