package fault

import (
	"hash/fnv"
	"math/rand"
	"sort"
)

// Action is one cluster-level scheduled fault, fired by the chaos harness
// when the workload reaches operation index AtOp.
type Action struct {
	AtOp int
	Kind string // "promote", "restart", or "partition"
	Arg  int    // partition: window length in verbs
}

// BuildSchedule derives a deterministic cluster-fault schedule from the
// plane's seed: nPromote mirror promotions, nRestart power-fail back-end
// restarts, and nPartition partition windows, placed at distinct operation
// indices in [totalOps/10, totalOps) and returned sorted by AtOp. The
// first tenth of the run is left fault-free so the workload's structures
// exist before the first failover. Partition windows are 3–6 verbs, below
// any sane retry budget, so they are absorbed by retries.
func (p *Plane) BuildSchedule(totalOps, nPromote, nRestart, nPartition int) []Action {
	h := fnv.New64a()
	h.Write([]byte("sched"))
	rng := rand.New(rand.NewSource(p.seed ^ int64(h.Sum64())))

	lo := totalOps / 10
	if lo < 1 {
		lo = 1
	}
	span := totalOps - lo
	if span < 1 {
		span = 1
	}
	used := make(map[int]bool)
	place := func() int {
		// Bounded: with more actions than available indices (degenerate
		// totalOps), fall back to sharing an index rather than spinning.
		for tries := 0; tries < 4*span; tries++ {
			at := lo + rng.Intn(span)
			if !used[at] {
				used[at] = true
				return at
			}
		}
		return lo + rng.Intn(span)
	}
	var out []Action
	for i := 0; i < nPromote; i++ {
		out = append(out, Action{AtOp: place(), Kind: "promote"})
	}
	for i := 0; i < nRestart; i++ {
		out = append(out, Action{AtOp: place(), Kind: "restart"})
	}
	for i := 0; i < nPartition; i++ {
		out = append(out, Action{AtOp: place(), Kind: "partition", Arg: 3 + rng.Intn(4)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AtOp < out[j].AtOp })
	return out
}
