package fault

import (
	"errors"
	"testing"

	"asymnvm/internal/rdma"
)

// driveHook issues n write verbs against the injector's hook and returns
// the per-call fault verdicts.
func driveHook(in *Injector, n int) []rdma.Fault {
	hook := in.Hook()
	out := make([]rdma.Fault, n)
	for i := 0; i < n; i++ {
		out[i] = hook(rdma.OpWrite, uint64(i*64), 64)
	}
	return out
}

// TestInjectorDeterminism pins the plane's core contract: the fault
// stream of an injector is a pure function of (seed, name, call
// sequence).
func TestInjectorDeterminism(t *testing.T) {
	mk := func() *Plane {
		p := NewPlane(42)
		in := p.Injector("fe1->bk0")
		in.SetVerbFaults(VerbFaults{DropProb: 0.2, TruncateProb: 0.1, DelayProb: 0.1})
		driveHook(in, 500)
		return p
	}
	a, b := mk(), mk()
	al, bl := a.EventLog(), b.EventLog()
	if len(al) == 0 {
		t.Fatal("20%+ fault rates over 500 verbs must inject something")
	}
	if len(al) != len(bl) {
		t.Fatalf("event counts differ: %d vs %d", len(al), len(bl))
	}
	for i := range al {
		if al[i] != bl[i] {
			t.Fatalf("event %d differs: %q vs %q", i, al[i], bl[i])
		}
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("digests differ: %016x vs %016x", a.Digest(), b.Digest())
	}
}

// TestInjectorStreamsIndependent: the stream of one injector must not
// shift when another injector on the same plane is exercised in between
// (connections race each other in host time).
func TestInjectorStreamsIndependent(t *testing.T) {
	cfg := VerbFaults{DropProb: 0.3}
	solo := NewPlane(7)
	si := solo.Injector("fe1->bk0")
	si.SetVerbFaults(cfg)
	want := driveHook(si, 200)

	mixed := NewPlane(7)
	mi := mixed.Injector("fe1->bk0")
	mi.SetVerbFaults(cfg)
	other := mixed.Injector("fe2->bk0")
	other.SetVerbFaults(cfg)
	oh := other.Hook()
	h := mi.Hook()
	for i := 0; i < 200; i++ {
		oh(rdma.OpRead, 0, 8) // interleaved traffic on another connection
		got := h(rdma.OpWrite, uint64(i*64), 64)
		if (got.Err == nil) != (want[i].Err == nil) || got.Truncate != want[i].Truncate {
			t.Fatalf("verb %d verdict changed under interleaving: %+v vs %+v", i, got, want[i])
		}
	}
}

// TestSeedChangesStream guards against the seed being ignored.
func TestSeedChangesStream(t *testing.T) {
	logs := make([]uint64, 2)
	for i, seed := range []int64{1, 2} {
		p := NewPlane(seed)
		in := p.Injector("fe1->bk0")
		in.SetVerbFaults(VerbFaults{DropProb: 0.3})
		driveHook(in, 300)
		logs[i] = p.Digest()
	}
	if logs[0] == logs[1] {
		t.Fatal("different seeds produced identical fault logs")
	}
}

// TestPartitionWindow: a partition of n verbs fails exactly the next n
// verbs and then heals.
func TestPartitionWindow(t *testing.T) {
	p := NewPlane(1)
	in := p.Injector("fe1->bk0")
	in.Partition(3)
	hook := in.Hook()
	for i := 0; i < 3; i++ {
		f := hook(rdma.OpRead, 0, 8)
		if !errors.Is(f.Err, rdma.ErrInjected) {
			t.Fatalf("verb %d inside the partition window must fail, got %+v", i, f)
		}
	}
	if f := hook(rdma.OpRead, 0, 8); f.Err != nil {
		t.Fatalf("verb after the window must succeed, got %v", f.Err)
	}
	evs := p.Events()
	if len(evs) != 3 {
		t.Fatalf("want 3 partition events, got %d", len(evs))
	}
	for _, e := range evs {
		if e.Kind != KindPartition {
			t.Fatalf("want partition events, got %v", e.Kind)
		}
	}
}

// TestDisconnectReconnect: a disconnected injector fails every verb with
// ErrDisconnected (the fatal class) until reconnected.
func TestDisconnectReconnect(t *testing.T) {
	p := NewPlane(1)
	in := p.Injector("fe1->bk0")
	hook := in.Hook()
	in.Disconnect()
	if !in.Disconnected() {
		t.Fatal("Disconnected() must report true")
	}
	for i := 0; i < 2; i++ {
		if f := hook(rdma.OpWrite, 0, 8); !errors.Is(f.Err, rdma.ErrDisconnected) {
			t.Fatalf("disconnected verb %d: got %+v", i, f)
		}
	}
	in.Reconnect()
	if f := hook(rdma.OpWrite, 0, 8); f.Err != nil {
		t.Fatalf("reconnected verb must pass, got %v", f.Err)
	}
}

// fakeSink records mirror traffic for the lag tests.
type fakeSink struct {
	writes []uint64
	ops    []uint16
	kicks  int
}

func (f *fakeSink) WantsRaw() bool { return true }
func (f *fakeSink) MirrorWrite(devOff uint64, data []byte) error {
	f.writes = append(f.writes, devOff)
	return nil
}
func (f *fakeSink) MirrorOp(slot uint16, rec []byte) error {
	f.ops = append(f.ops, slot)
	return nil
}
func (f *fakeSink) MirrorKick() { f.kicks++ }

// TestLagSinkDelaysAndDrains: traffic queued behind a 2-kick lag reaches
// the inner sink only after two kicks; Drain releases everything.
func TestLagSinkDelaysAndDrains(t *testing.T) {
	inner := &fakeSink{}
	l := NewLagSink(inner, 2)
	_ = l.MirrorWrite(100, []byte{1})
	_ = l.MirrorOp(5, []byte{2})
	if len(inner.writes) != 0 || len(inner.ops) != 0 {
		t.Fatal("lagged traffic must not reach the sink immediately")
	}
	l.MirrorKick()
	if len(inner.writes) != 0 {
		t.Fatal("one kick is inside the 2-kick lag window")
	}
	l.MirrorKick()
	if len(inner.writes) != 1 || inner.writes[0] != 100 || len(inner.ops) != 1 || inner.ops[0] != 5 {
		t.Fatalf("two kicks must release the queue: %+v", inner)
	}
	_ = l.MirrorWrite(200, []byte{3})
	if l.Queued() != 1 {
		t.Fatalf("queued = %d, want 1", l.Queued())
	}
	l.Drain()
	if l.Queued() != 0 || len(inner.writes) != 2 || inner.writes[1] != 200 {
		t.Fatalf("drain must flush everything: %+v", inner)
	}
}

// TestBuildScheduleDeterministic: the failure schedule is derived from
// the plane seed, sorted by op index, lands after warmup, and carries the
// requested action mix.
func TestBuildScheduleDeterministic(t *testing.T) {
	mk := func(seed int64) []Action {
		return NewPlane(seed).BuildSchedule(1000, 2, 2, 4)
	}
	a, b := mk(9), mk(9)
	if len(a) != 8 {
		t.Fatalf("schedule has %d actions, want 8", len(a))
	}
	counts := map[string]int{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules differ at %d: %+v vs %+v", i, a[i], b[i])
		}
		if i > 0 && a[i].AtOp < a[i-1].AtOp {
			t.Fatal("schedule must be sorted by op index")
		}
		if a[i].AtOp < 100 || a[i].AtOp >= 1000 {
			t.Fatalf("action %d at op %d, want within [100,1000)", i, a[i].AtOp)
		}
		counts[a[i].Kind]++
	}
	if counts["promote"] != 2 || counts["restart"] != 2 || counts["partition"] != 4 {
		t.Fatalf("action mix wrong: %+v", counts)
	}
	if c := mk(10); len(c) == len(a) && c[0] == a[0] && c[1] == a[1] && c[2] == a[2] {
		t.Fatal("different seeds should move the schedule")
	}
}

// TestEventOrderIsHostScheduleFree: the rendered log orders events by
// (source, seq), so the interleaving of two connections in host time
// does not change it.
func TestEventOrderIsHostScheduleFree(t *testing.T) {
	mk := func(firstA bool) *Plane {
		p := NewPlane(3)
		a := p.Injector("a")
		b := p.Injector("b")
		a.Partition(2)
		b.Partition(2)
		ha, hb := a.Hook(), b.Hook()
		if firstA {
			ha(rdma.OpRead, 0, 8)
			hb(rdma.OpRead, 0, 8)
			ha(rdma.OpRead, 8, 8)
			hb(rdma.OpRead, 8, 8)
		} else {
			hb(rdma.OpRead, 0, 8)
			hb(rdma.OpRead, 8, 8)
			ha(rdma.OpRead, 0, 8)
			ha(rdma.OpRead, 8, 8)
		}
		return p
	}
	if mk(true).Digest() != mk(false).Digest() {
		t.Fatal("cross-connection interleaving must not change the rendered log")
	}
}
