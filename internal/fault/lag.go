package fault

import (
	"sync"

	"asymnvm/internal/backend"
)

// lagItem is one withheld replication message.
type lagItem struct {
	raw  bool
	off  uint64
	data []byte
	slot uint16
	rec  []byte
	due  int // kick count at which the item may be released
}

// LagSink delays a mirror sink's traffic by a fixed number of replication
// kicks, modelling a replica that falls behind the primary. Writes and
// archived ops are queued in arrival order and released — still in order —
// once enough kicks have passed; Drain releases everything at once (the
// "mirror catches up before promotion" point).
type LagSink struct {
	mu    sync.Mutex
	inner backend.MirrorSink
	lag   int
	kicks int
	q     []lagItem
}

// NewLagSink wraps inner with a queue of lagKicks kicks.
func NewLagSink(inner backend.MirrorSink, lagKicks int) *LagSink {
	return &LagSink{inner: inner, lag: lagKicks}
}

// Inner returns the wrapped sink.
func (l *LagSink) Inner() backend.MirrorSink { return l.inner }

// Queued reports how many messages are currently withheld.
func (l *LagSink) Queued() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.q)
}

// WantsRaw defers to the wrapped sink.
func (l *LagSink) WantsRaw() bool { return l.inner.WantsRaw() }

// MirrorWrite queues a raw device range.
func (l *LagSink) MirrorWrite(devOff uint64, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.q = append(l.q, lagItem{raw: true, off: devOff, data: cp, due: l.kicks + l.lag})
	return nil
}

// MirrorOp queues an archived op record.
func (l *LagSink) MirrorOp(slot uint16, rec []byte) error {
	cp := make([]byte, len(rec))
	copy(cp, rec)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.q = append(l.q, lagItem{slot: slot, rec: cp, due: l.kicks + l.lag})
	return nil
}

// MirrorKick counts one replication round and releases every message whose
// lag has elapsed, then kicks the wrapped sink.
func (l *LagSink) MirrorKick() {
	l.mu.Lock()
	l.kicks++
	err := l.releaseLocked(l.kicks)
	l.mu.Unlock()
	_ = err
	l.inner.MirrorKick()
}

// Drain releases every queued message regardless of lag and kicks the sink.
func (l *LagSink) Drain() {
	l.mu.Lock()
	err := l.releaseLocked(int(^uint(0) >> 1))
	l.mu.Unlock()
	_ = err
	l.inner.MirrorKick()
}

// releaseLocked forwards queued items due at or before kick, in order.
func (l *LagSink) releaseLocked(kick int) error {
	var firstErr error
	n := 0
	for _, it := range l.q {
		if it.due > kick {
			break
		}
		var err error
		if it.raw {
			err = l.inner.MirrorWrite(it.off, it.data)
		} else {
			err = l.inner.MirrorOp(it.slot, it.rec)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
		n++
	}
	l.q = l.q[n:]
	return firstErr
}
