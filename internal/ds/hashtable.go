package ds

import (
	"encoding/binary"
	"fmt"

	"asymnvm/internal/backend"
	"asymnvm/internal/core"
	"asymnvm/internal/logrec"
)

// HashTable is the chained hash table of §8.2. A fixed bucket array of
// 8-byte head pointers is allocated at creation (its address and size are
// persisted in the aux user area); nodes chain off the buckets. Caching
// is item-granular — bucket words and chain nodes are each their own
// cacheable unit, so hot keys stay in front-end DRAM. Batching brings no
// benefit for O(1) structures (per the paper), but works if enabled.
//
// Node layout: {next u64, key u64, vlen u32, pad u32, value[cap]}.
const htHdr = 24

// HashTable is a persistent chained hash map, SWMR like every structure.
type HashTable struct {
	h       *core.Handle
	w       writerSession
	cap     int
	buckets uint64
	arr     uint64 // global address of the bucket array
	writer  bool
}

func (t *HashTable) nodeSize() int { return htHdr + t.cap }

// Aux user layout: +0 bucket array address, +8 bucket count.

// CreateHashTable registers a new hash table and allocates its buckets.
func CreateHashTable(c *core.Conn, name string, opts Options) (*HashTable, error) {
	opts.fill()
	h, err := c.Create(name, backend.TypeHashTable, opts.Create)
	if err != nil {
		return nil, err
	}
	arr, err := c.Calloc(uint64(opts.Buckets) * 8)
	if err != nil {
		return nil, err
	}
	// Persist the array location in the aux user area through the log
	// path, so replay — and therefore the mirrors — see it.
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], arr)
	binary.LittleEndian.PutUint64(b[8:], uint64(opts.Buckets))
	if err := h.Write(h.AuxAddr()+backend.AuxUser, b[:]); err != nil {
		return nil, err
	}
	if err := h.Flush(); err != nil {
		return nil, err
	}
	t := &HashTable{h: h, w: writerSession{h: h, lockPerOp: opts.LockPerOp},
		cap: opts.ValueCap, buckets: uint64(opts.Buckets), arr: arr, writer: true}
	if !opts.LockPerOp {
		if err := h.WriterLock(); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// OpenHashTable attaches to an existing table.
func OpenHashTable(c *core.Conn, name string, writer bool, opts Options) (*HashTable, error) {
	opts.fill()
	h, err := c.Open(name, writer)
	if err != nil {
		return nil, err
	}
	meta, err := h.Read(h.AuxAddr()+backend.AuxUser, 16, false)
	if err != nil {
		return nil, err
	}
	t := &HashTable{h: h, w: writerSession{h: h, lockPerOp: opts.LockPerOp},
		cap: opts.ValueCap,
		arr: binary.LittleEndian.Uint64(meta[:8]), buckets: binary.LittleEndian.Uint64(meta[8:]),
		writer: writer}
	if writer {
		if !opts.LockPerOp {
			if err := h.WriterLock(); err != nil {
				return nil, err
			}
		}
		if _, err := ReplayPending(h, t); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Handle exposes the underlying framework handle.
func (t *HashTable) Handle() *core.Handle { return t.h }

// hashKey mixes the key to a bucket index (fibonacci hashing).
func (t *HashTable) bucketAddr(key uint64) uint64 {
	idx := (key * 0x9E3779B97F4A7C15) % t.buckets
	return t.arr + idx*8
}

func (t *HashTable) encodeNode(next, key uint64, val []byte) []byte {
	buf := make([]byte, t.nodeSize())
	binary.LittleEndian.PutUint64(buf, next)
	binary.LittleEndian.PutUint64(buf[8:], key)
	binary.LittleEndian.PutUint32(buf[16:], uint32(len(val)))
	copy(buf[htHdr:], val)
	return buf
}

func (t *HashTable) decodeNode(buf []byte) (next, key uint64, val []byte, err error) {
	next = binary.LittleEndian.Uint64(buf)
	key = binary.LittleEndian.Uint64(buf[8:])
	vlen := binary.LittleEndian.Uint32(buf[16:])
	if int(vlen) > t.cap {
		return 0, 0, nil, fmt.Errorf("ds: corrupt hash node (vlen=%d)", vlen)
	}
	return next, key, append([]byte(nil), buf[htHdr:htHdr+int(vlen)]...), nil
}

// Put inserts or updates key.
func (t *HashTable) Put(key uint64, val []byte) error {
	if len(val) > t.cap {
		return ErrValueTooLarge
	}
	if err := t.w.begin(); err != nil {
		return err
	}
	opAbs, err := t.h.OpLog(OpPut, kvParams(key, val))
	if err != nil {
		return err
	}
	if err := t.put(key, val, opAbs); err != nil {
		return err
	}
	return t.w.end()
}

func (t *HashTable) put(key uint64, val []byte, opAbs uint64) error {
	bAddr := t.bucketAddr(key)
	headB, err := t.h.Read(bAddr, 8, true)
	if err != nil {
		return err
	}
	head := binary.LittleEndian.Uint64(headB)
	// Walk the chain looking for the key.
	for n := head; n != 0; {
		buf, err := t.h.Read(n, t.nodeSize(), true)
		if err != nil {
			return err
		}
		next, k, _, err := t.decodeNode(buf)
		if err != nil {
			return err
		}
		if k == key {
			// In-place update: rewrite the whole node unit.
			return t.h.Write(n, t.encodeNode(next, key, val))
		}
		n = next
	}
	// Insert at the chain head.
	node, err := t.h.Alloc(t.nodeSize())
	if err != nil {
		return err
	}
	if err := t.h.Write(node, t.encodeNode(head, key, val)); err != nil {
		return err
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], node)
	_ = opAbs // bucket word is tiny; pointer-form logging buys nothing here
	return t.h.Write(bAddr, b[:])
}

// Get looks a key up. Readers retry under the seqlock.
func (t *HashTable) Get(key uint64) ([]byte, bool, error) {
	t.h.Conn().Frontend().ChargeOp()
	var out []byte
	var found bool
	err := readRetry(t.h, func() error {
		out, found = nil, false
		bAddr := t.bucketAddr(key)
		headB, err := t.h.Read(bAddr, 8, true)
		if err != nil {
			return err
		}
		for n := binary.LittleEndian.Uint64(headB); n != 0; {
			buf, err := t.h.Read(n, t.nodeSize(), true)
			if err != nil {
				return err
			}
			next, k, v, err := t.decodeNode(buf)
			if err != nil {
				return err
			}
			if k == key {
				out, found = v, true
				return nil
			}
			n = next
		}
		return nil
	})
	return out, found, err
}

// GetMulti looks up a batch of keys with posted-verb parallelism: all
// bucket heads are fetched in one doorbell group, then the surviving
// chains advance level-synchronously — every chain's next node is an
// independent one-sided read, so a level costs one round trip per
// queue-depth window instead of one per key. With chains of average
// length L the whole batch costs about L+1 group round trips where
// sequential Gets would pay len(keys)·(L+1). Results index-match keys.
func (t *HashTable) GetMulti(keys []uint64) ([][]byte, []bool, error) {
	t.h.Conn().Frontend().ChargeOp()
	vals := make([][]byte, len(keys))
	found := make([]bool, len(keys))
	err := readRetry(t.h, func() error {
		for i := range vals {
			vals[i], found[i] = nil, false
		}
		bucketAddrs := make([]uint64, len(keys))
		for i, k := range keys {
			bucketAddrs[i] = t.bucketAddr(k)
		}
		heads, err := t.h.ReadMulti(bucketAddrs, 8, true)
		if err != nil {
			return err
		}
		// active chains: position index into keys plus current node addr.
		var idx []int
		var addrs []uint64
		for i, hb := range heads {
			if n := binary.LittleEndian.Uint64(hb); n != 0 {
				idx = append(idx, i)
				addrs = append(addrs, n)
			}
		}
		for len(idx) > 0 {
			bufs, err := t.h.ReadMulti(addrs, t.nodeSize(), true)
			if err != nil {
				return err
			}
			var nextIdx []int
			var nextAddrs []uint64
			for j, buf := range bufs {
				next, k, v, err := t.decodeNode(buf)
				if err != nil {
					return err
				}
				if k == keys[idx[j]] {
					vals[idx[j]], found[idx[j]] = v, true
					continue
				}
				if next != 0 {
					nextIdx = append(nextIdx, idx[j])
					nextAddrs = append(nextAddrs, next)
				}
			}
			idx, addrs = nextIdx, nextAddrs
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return vals, found, nil
}

// Delete removes a key, reporting whether it existed.
func (t *HashTable) Delete(key uint64) (bool, error) {
	if err := t.w.begin(); err != nil {
		return false, err
	}
	if _, err := t.h.OpLog(OpDelete, kvParams(key, nil)); err != nil {
		return false, err
	}
	removed, err := t.delete(key)
	if err != nil {
		return false, err
	}
	return removed, t.w.end()
}

func (t *HashTable) delete(key uint64) (bool, error) {
	bAddr := t.bucketAddr(key)
	headB, err := t.h.Read(bAddr, 8, true)
	if err != nil {
		return false, err
	}
	prev := uint64(0)
	var prevBuf []byte
	for n := binary.LittleEndian.Uint64(headB); n != 0; {
		buf, err := t.h.Read(n, t.nodeSize(), true)
		if err != nil {
			return false, err
		}
		next, k, _, err := t.decodeNode(buf)
		if err != nil {
			return false, err
		}
		if k == key {
			if prev == 0 {
				var b [8]byte
				binary.LittleEndian.PutUint64(b[:], next)
				if err := t.h.Write(bAddr, b[:]); err != nil {
					return false, err
				}
			} else {
				relinked := append([]byte(nil), prevBuf...)
				binary.LittleEndian.PutUint64(relinked, next)
				if err := t.h.Write(prev, relinked); err != nil {
					return false, err
				}
			}
			t.h.DelayedFree(n, t.nodeSize())
			return true, nil
		}
		prev, prevBuf = n, buf
		n = next
	}
	return false, nil
}

// Flush flushes the batch buffers.
func (t *HashTable) Flush() error { return t.h.Flush() }

// Drain flushes and waits for replay.
func (t *HashTable) Drain() error {
	if err := t.h.Flush(); err != nil {
		return err
	}
	return t.h.Drain()
}

// Close drains and releases the writer lock.
func (t *HashTable) Close() error {
	if !t.writer {
		return nil
	}
	if err := t.Drain(); err != nil {
		return err
	}
	return t.h.WriterUnlock()
}

// ReplayOp re-executes one pending op-log record.
func (t *HashTable) ReplayOp(rec logrec.OpRecord) error {
	switch rec.OpType &^ logrec.OpTxFlag {
	case OpPut:
		key, val, err := splitKV(rec.Params)
		if err != nil {
			return err
		}
		if err := t.put(key, val, 0); err != nil {
			return err
		}
		return t.h.EndOp()
	case OpDelete:
		key, _, err := splitKV(rec.Params)
		if err != nil {
			return err
		}
		if _, err := t.delete(key); err != nil {
			return err
		}
		return t.h.EndOp()
	default:
		return fmt.Errorf("ds: hash table cannot replay op %d", rec.OpType)
	}
}
