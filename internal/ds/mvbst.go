package ds

import (
	"fmt"

	"asymnvm/internal/backend"
	"asymnvm/internal/core"
	"asymnvm/internal/logrec"
)

// MVBST is the multi-version binary search tree of §6.2 (Figure 5):
// nodes are immutable; a write copies every node on the path to the root
// (path copying) and atomically installs the new root. Readers are
// lock-free — they load the current root and traverse a frozen version —
// and old versions are reclaimed lazily, well after any reader that could
// still hold them has finished.
type MVBST struct {
	h      *core.Handle
	w      writerSession
	cap    int
	pol    *levelPolicy
	writer bool
}

func (t *MVBST) nodeSize() int { return bstHdr + t.cap }

// CreateMVBST registers a new multi-version tree.
func CreateMVBST(c *core.Conn, name string, opts Options) (*MVBST, error) {
	opts.fill()
	h, err := c.Create(name, backend.TypeMVBST, opts.Create)
	if err != nil {
		return nil, err
	}
	return newMVBST(h, opts, true)
}

// OpenMVBST attaches to an existing multi-version tree.
func OpenMVBST(c *core.Conn, name string, writer bool, opts Options) (*MVBST, error) {
	opts.fill()
	h, err := c.Open(name, writer)
	if err != nil {
		return nil, err
	}
	t, err := newMVBST(h, opts, writer)
	if err != nil {
		return nil, err
	}
	if writer {
		if _, err := ReplayPending(h, t); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func newMVBST(h *core.Handle, opts Options, writer bool) (*MVBST, error) {
	h.MultiVersion(true)
	t := &MVBST{h: h, w: writerSession{h: h, lockPerOp: opts.LockPerOp},
		cap: opts.ValueCap, pol: newLevelPolicy(), writer: writer}
	if opts.FlatCache {
		t.pol = newFlatPolicy()
	}
	if writer && !opts.LockPerOp {
		if err := h.WriterLock(); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Handle exposes the underlying framework handle.
func (t *MVBST) Handle() *core.Handle { return t.h }

// encode/decode share the BST node layout.
func (t *MVBST) encodeNode(key, left, right uint64, val []byte) []byte {
	b := BST{cap: t.cap}
	return b.encodeNode(key, left, right, val)
}

func (t *MVBST) decodeNode(buf []byte) (bstNode, error) {
	b := BST{cap: t.cap}
	return b.decodeNode(buf)
}

func (t *MVBST) readNode(addr uint64, depth int) (bstNode, error) {
	buf, err := t.h.Read(addr, t.nodeSize(), t.pol.cacheable(depth))
	if err != nil {
		return bstNode{}, err
	}
	return t.decodeNode(buf)
}

// Put inserts or updates key by path copying.
func (t *MVBST) Put(key uint64, val []byte) error {
	if len(val) > t.cap {
		return ErrValueTooLarge
	}
	if err := t.w.begin(); err != nil {
		return err
	}
	if _, err := t.h.OpLog(OpPut, kvParams(key, val)); err != nil {
		t.w.cancel()
		return err
	}
	if err := t.put(key, val); err != nil {
		t.w.cancel()
		return err
	}
	t.pol.observe(t.h.Conn().Frontend().Stats())
	return t.w.end()
}

type mvPathEnt struct {
	addr uint64
	node bstNode
	left bool // descended into the left child
}

func (t *MVBST) put(key uint64, val []byte) error {
	root, err := t.h.ReadRoot()
	if err != nil {
		return err
	}
	var path []mvPathEnt
	cur := root
	replaceVal := false
	for cur != 0 {
		n, err := t.readNode(cur, len(path))
		if err != nil {
			return err
		}
		if n.key == key {
			path = append(path, mvPathEnt{addr: cur, node: n})
			replaceVal = true
			break
		}
		left := key < n.key
		path = append(path, mvPathEnt{addr: cur, node: n, left: left})
		if left {
			cur = n.left
		} else {
			cur = n.right
		}
	}
	// Build the new version bottom-up.
	var childAddr uint64
	if replaceVal {
		last := path[len(path)-1]
		addr, err := t.h.Alloc(t.nodeSize())
		if err != nil {
			return err
		}
		if err := t.h.Write(addr, t.encodeNode(key, last.node.left, last.node.right, val)); err != nil {
			return err
		}
		childAddr = addr
		path = path[:len(path)-1]
		t.h.DelayedFree(last.addr, t.nodeSize())
	} else {
		addr, err := t.h.Alloc(t.nodeSize())
		if err != nil {
			return err
		}
		if err := t.h.Write(addr, t.encodeNode(key, 0, 0, val)); err != nil {
			return err
		}
		childAddr = addr
	}
	for i := len(path) - 1; i >= 0; i-- {
		ent := path[i]
		l, r := ent.node.left, ent.node.right
		if ent.left {
			l = childAddr
		} else {
			r = childAddr
		}
		addr, err := t.h.Alloc(t.nodeSize())
		if err != nil {
			return err
		}
		if err := t.h.Write(addr, t.encodeNode(ent.node.key, l, r, ent.node.val)); err != nil {
			return err
		}
		childAddr = addr
	}
	// Atomic root switch through the log, then lazy reclamation of the
	// whole old path (§6.2).
	if err := t.h.WriteRoot(childAddr); err != nil {
		return err
	}
	for _, ent := range path {
		t.h.DelayedFree(ent.addr, t.nodeSize())
	}
	return nil
}

// Get traverses the version the root pointed at when the operation
// started; no locks, no retries.
func (t *MVBST) Get(key uint64) ([]byte, bool, error) {
	t.h.Conn().Frontend().ChargeOp()
	root, err := t.h.ReadRoot()
	if err != nil {
		return nil, false, err
	}
	cur := root
	depth := 0
	for cur != 0 {
		n, err := t.readNode(cur, depth)
		if err != nil {
			return nil, false, err
		}
		if n.key == key {
			return n.val, true, nil
		}
		if key < n.key {
			cur = n.left
		} else {
			cur = n.right
		}
		depth++
	}
	return nil, false, nil
}

// Flush flushes the batch buffers.
func (t *MVBST) Flush() error { return t.h.Flush() }

// Drain flushes and waits for replay.
func (t *MVBST) Drain() error {
	if err := t.h.Flush(); err != nil {
		return err
	}
	return t.h.Drain()
}

// Close drains and releases the writer lock.
func (t *MVBST) Close() error {
	if !t.writer {
		return nil
	}
	if err := t.Drain(); err != nil {
		return err
	}
	return t.h.WriterUnlock()
}

// ReplayOp re-executes one pending op-log record.
func (t *MVBST) ReplayOp(rec logrec.OpRecord) error {
	switch rec.OpType &^ logrec.OpTxFlag {
	case OpPut:
		key, val, err := splitKV(rec.Params)
		if err != nil {
			return err
		}
		if err := t.put(key, val); err != nil {
			return err
		}
		return t.h.EndOp()
	default:
		return fmt.Errorf("ds: mv-bst cannot replay op %d", rec.OpType)
	}
}
