package ds

import (
	"fmt"

	"asymnvm/internal/backend"
	"asymnvm/internal/core"
	"asymnvm/internal/logrec"
)

// MVBPTree is the multi-version B+Tree: the append-only B-Tree design the
// paper cites (§6.2), realized with path copying over the same node
// layout as BPTree. Every write allocates fresh copies of the touched
// path (plus split siblings and the value blob) and installs a new root;
// readers traverse frozen versions lock-free. Leaf chaining is not
// maintained across versions (point queries only), as in append-only
// B-Trees where the chain is rebuilt by compaction.
type MVBPTree struct {
	h      *core.Handle
	w      writerSession
	cap    int
	pol    *levelPolicy
	writer bool
}

// CreateMVBPTree registers a new multi-version B+Tree.
func CreateMVBPTree(c *core.Conn, name string, opts Options) (*MVBPTree, error) {
	opts.fill()
	h, err := c.Create(name, backend.TypeMVBPTree, opts.Create)
	if err != nil {
		return nil, err
	}
	root, err := c.Calloc(bptNode)
	if err != nil {
		return nil, err
	}
	leaf := &bptNodeT{isLeaf: true}
	if err := h.Write(root, encodeBPT(leaf)); err != nil {
		return nil, err
	}
	if err := h.WriteRoot(root); err != nil {
		return nil, err
	}
	if err := h.Flush(); err != nil {
		return nil, err
	}
	return newMVBPTree(h, opts, true)
}

// OpenMVBPTree attaches to an existing multi-version B+Tree.
func OpenMVBPTree(c *core.Conn, name string, writer bool, opts Options) (*MVBPTree, error) {
	opts.fill()
	h, err := c.Open(name, writer)
	if err != nil {
		return nil, err
	}
	t, err := newMVBPTree(h, opts, writer)
	if err != nil {
		return nil, err
	}
	if writer {
		if _, err := ReplayPending(h, t); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func newMVBPTree(h *core.Handle, opts Options, writer bool) (*MVBPTree, error) {
	h.MultiVersion(true)
	t := &MVBPTree{h: h, w: writerSession{h: h, lockPerOp: opts.LockPerOp},
		cap: opts.ValueCap, pol: newLevelPolicy(), writer: writer}
	if opts.FlatCache {
		t.pol = newFlatPolicy()
	}
	if writer && !opts.LockPerOp {
		if err := h.WriterLock(); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Handle exposes the underlying framework handle.
func (t *MVBPTree) Handle() *core.Handle { return t.h }

func (t *MVBPTree) readNode(addr uint64, depth int) (*bptNodeT, error) {
	buf, err := t.h.Read(addr, bptNode, t.pol.cacheable(depth))
	if err != nil {
		return nil, err
	}
	return decodeBPT(buf)
}

func (t *MVBPTree) newNode(n *bptNodeT) (uint64, error) {
	addr, err := t.h.Alloc(bptNode)
	if err != nil {
		return 0, err
	}
	n.next = 0 // chains are not maintained across versions
	return addr, t.h.Write(addr, encodeBPT(n))
}

func (t *MVBPTree) writeBlob(val []byte) (uint64, error) {
	bp := BPTree{h: t.h, cap: t.cap}
	addr, err := t.h.Alloc(t.cap + 4)
	if err != nil {
		return 0, err
	}
	return addr, bp.writeBlob(addr, val, 0)
}

// Put installs a new version containing the key.
func (t *MVBPTree) Put(key uint64, val []byte) error {
	if len(val) > t.cap {
		return ErrValueTooLarge
	}
	if err := t.w.begin(); err != nil {
		return err
	}
	if _, err := t.h.OpLog(OpPut, kvParams(key, val)); err != nil {
		t.w.cancel()
		return err
	}
	if err := t.put(key, val); err != nil {
		t.w.cancel()
		return err
	}
	t.pol.observe(t.h.Conn().Frontend().Stats())
	return t.w.end()
}

func (t *MVBPTree) put(key uint64, val []byte) error {
	root, err := t.h.ReadRoot()
	if err != nil {
		return err
	}
	newAddr, promo, sib, err := t.insertCopy(root, 0, key, val)
	if err != nil {
		return err
	}
	if sib != 0 {
		nr := &bptNodeT{n: 1}
		nr.keys[0] = promo
		nr.ptrs[0] = newAddr
		nr.ptrs[1] = sib
		rootAddr, err := t.newNode(nr)
		if err != nil {
			return err
		}
		newAddr = rootAddr
	}
	if err := t.h.WriteRoot(newAddr); err != nil {
		return err
	}
	return nil
}

// insertCopy returns the address of the copied subtree root and, on
// split, the separator and the new right sibling.
func (t *MVBPTree) insertCopy(addr uint64, depth int, key uint64, val []byte) (uint64, uint64, uint64, error) {
	n, err := t.readNode(addr, depth)
	if err != nil {
		return 0, 0, 0, err
	}
	cp := *n // copy-on-write image
	if n.isLeaf {
		pos := searchKeys(n, key)
		blob, err := t.writeBlob(val)
		if err != nil {
			return 0, 0, 0, err
		}
		if pos < n.n && n.keys[pos] == key {
			t.h.DelayedFree(cp.ptrs[pos], t.cap+4)
			cp.ptrs[pos] = blob
		} else {
			for i := cp.n; i > pos; i-- {
				cp.keys[i] = cp.keys[i-1]
				cp.ptrs[i] = cp.ptrs[i-1]
			}
			cp.keys[pos] = key
			cp.ptrs[pos] = blob
			cp.n++
		}
		t.h.DelayedFree(addr, bptNode)
		if cp.n <= bptMaxKeys {
			na, err := t.newNode(&cp)
			return na, 0, 0, err
		}
		// Split into two fresh leaves.
		mid := cp.n / 2
		right := &bptNodeT{isLeaf: true, n: cp.n - mid}
		for i := 0; i < right.n; i++ {
			right.keys[i] = cp.keys[mid+i]
			right.ptrs[i] = cp.ptrs[mid+i]
		}
		cp.n = mid
		la, err := t.newNode(&cp)
		if err != nil {
			return 0, 0, 0, err
		}
		ra, err := t.newNode(right)
		if err != nil {
			return 0, 0, 0, err
		}
		return la, right.keys[0], ra, nil
	}
	pos := searchKeys(n, key)
	if pos < n.n && n.keys[pos] == key {
		pos++
	}
	childNew, promo, sib, err := t.insertCopy(n.ptrs[pos], depth+1, key, val)
	if err != nil {
		return 0, 0, 0, err
	}
	cp.ptrs[pos] = childNew
	if sib != 0 {
		for i := cp.n; i > pos; i-- {
			cp.keys[i] = cp.keys[i-1]
			cp.ptrs[i+1] = cp.ptrs[i]
		}
		cp.keys[pos] = promo
		cp.ptrs[pos+1] = sib
		cp.n++
	}
	t.h.DelayedFree(addr, bptNode)
	if cp.n <= bptMaxKeys {
		na, err := t.newNode(&cp)
		return na, 0, 0, err
	}
	mid := cp.n / 2
	upKey := cp.keys[mid]
	right := &bptNodeT{n: cp.n - mid - 1}
	for i := 0; i < right.n; i++ {
		right.keys[i] = cp.keys[mid+1+i]
	}
	for i := 0; i <= right.n; i++ {
		right.ptrs[i] = cp.ptrs[mid+1+i]
	}
	cp.n = mid
	la, err := t.newNode(&cp)
	if err != nil {
		return 0, 0, 0, err
	}
	ra, err := t.newNode(right)
	if err != nil {
		return 0, 0, 0, err
	}
	return la, upKey, ra, nil
}

// Get traverses a frozen version lock-free.
func (t *MVBPTree) Get(key uint64) ([]byte, bool, error) {
	t.h.Conn().Frontend().ChargeOp()
	root, err := t.h.ReadRoot()
	if err != nil {
		return nil, false, err
	}
	addr := root
	depth := 0
	bp := BPTree{h: t.h, cap: t.cap, pol: t.pol}
	for {
		n, err := t.readNode(addr, depth)
		if err != nil {
			return nil, false, err
		}
		pos := searchKeys(n, key)
		if n.isLeaf {
			if pos < n.n && n.keys[pos] == key {
				v, err := bp.readBlob(n.ptrs[pos], t.pol.cacheable(depth+1))
				if err != nil {
					return nil, false, err
				}
				return v, true, nil
			}
			return nil, false, nil
		}
		if pos < n.n && n.keys[pos] == key {
			pos++
		}
		addr = n.ptrs[pos]
		depth++
	}
}

// Flush flushes the batch buffers.
func (t *MVBPTree) Flush() error { return t.h.Flush() }

// Drain flushes and waits for replay.
func (t *MVBPTree) Drain() error {
	if err := t.h.Flush(); err != nil {
		return err
	}
	return t.h.Drain()
}

// Close drains and releases the writer lock.
func (t *MVBPTree) Close() error {
	if !t.writer {
		return nil
	}
	if err := t.Drain(); err != nil {
		return err
	}
	return t.h.WriterUnlock()
}

// ReplayOp re-executes one pending op-log record.
func (t *MVBPTree) ReplayOp(rec logrec.OpRecord) error {
	switch rec.OpType &^ logrec.OpTxFlag {
	case OpPut:
		key, val, err := splitKV(rec.Params)
		if err != nil {
			return err
		}
		if err := t.put(key, val); err != nil {
			return err
		}
		return t.h.EndOp()
	default:
		return fmt.Errorf("ds: mv-b+tree cannot replay op %d", rec.OpType)
	}
}
