package ds

import (
	"encoding/binary"

	"asymnvm/internal/core"
)

// Multi-get walkers: each structure expresses its batched lookup as a
// sequence of fetch rounds — "read these addresses at this unit size" —
// so the same descent logic can run either against a single back-end
// (runWalker, via Handle.ReadMulti) or interleaved with other partitions'
// walkers inside a cross-backend fan-out window (Partitioned.GetMulti,
// via Handle.PostReadMulti). The rounds replicate the exact read sequence
// of the structure's own batched or sequential lookup, so caching and
// virtual-clock charges stay identical between the two drivers.

// fetchReq is one fetch round: all addrs are read at the same unit size
// and cacheability.
type fetchReq struct {
	addrs     []uint64
	unit      int
	cacheable bool
}

// getWalker advances a batched lookup one fetch round at a time. next
// returns the round to fetch (ok=false when the walk is complete); absorb
// consumes the fetched buffers, index-matched to the round's addrs.
type getWalker interface {
	next() (fetchReq, bool)
	absorb(bufs [][]byte) error
}

// runWalker drives a walker to completion against its own back-end.
func runWalker(h *core.Handle, w getWalker) error {
	for {
		req, ok := w.next()
		if !ok {
			return nil
		}
		bufs, err := h.ReadMulti(req.addrs, req.unit, req.cacheable)
		if err != nil {
			return err
		}
		if err := w.absorb(bufs); err != nil {
			return err
		}
	}
}

// handled is implemented by every concrete KV kind: access to the
// framework handle.
type handled interface {
	Handle() *core.Handle
}

// multiKV is a KV kind with a native batched lookup that Partitioned can
// interleave across back-ends.
type multiKV interface {
	KV
	handled
	GetMulti(keys []uint64) ([][]byte, []bool, error)
	newGetWalker(keys []uint64, vals [][]byte, found []bool) getWalker
	// readValidate reports whether reader-side walks must be bracketed by
	// the retry seqlock (false for lock-free readers, §8.4's skip list).
	readValidate() bool
}

// --- hash table ---------------------------------------------------------

// htWalker replays HashTable.GetMulti's fetch sequence: one round of
// bucket heads, then level-synchronous chain rounds.
type htWalker struct {
	t     *HashTable
	keys  []uint64
	vals  [][]byte
	found []bool
	idx   []int    // active chains: position in keys
	addrs []uint64 // active chains: current node address
	phase int      // 0 = heads round pending, 1 = chain rounds
}

func (t *HashTable) newGetWalker(keys []uint64, vals [][]byte, found []bool) getWalker {
	return &htWalker{t: t, keys: keys, vals: vals, found: found}
}

func (t *HashTable) readValidate() bool { return true }

func (w *htWalker) next() (fetchReq, bool) {
	if w.phase == 0 {
		bucketAddrs := make([]uint64, len(w.keys))
		for i, k := range w.keys {
			bucketAddrs[i] = w.t.bucketAddr(k)
		}
		return fetchReq{addrs: bucketAddrs, unit: 8, cacheable: true}, true
	}
	if len(w.idx) == 0 {
		return fetchReq{}, false
	}
	return fetchReq{addrs: w.addrs, unit: w.t.nodeSize(), cacheable: true}, true
}

func (w *htWalker) absorb(bufs [][]byte) error {
	if w.phase == 0 {
		w.phase = 1
		for i, hb := range bufs {
			if n := binary.LittleEndian.Uint64(hb); n != 0 {
				w.idx = append(w.idx, i)
				w.addrs = append(w.addrs, n)
			}
		}
		return nil
	}
	var nextIdx []int
	var nextAddrs []uint64
	for j, buf := range bufs {
		next, k, v, err := w.t.decodeNode(buf)
		if err != nil {
			return err
		}
		if k == w.keys[w.idx[j]] {
			w.vals[w.idx[j]], w.found[w.idx[j]] = v, true
			continue
		}
		if next != 0 {
			nextIdx = append(nextIdx, w.idx[j])
			nextAddrs = append(nextAddrs, next)
		}
	}
	w.idx, w.addrs = nextIdx, nextAddrs
	return nil
}

// --- skip list ----------------------------------------------------------

// slCursor is one key's descent position.
type slCursor struct {
	cur   uint64 // current node address
	level int    // current descent level
	done  bool
}

// slWalker runs the skip-list descent of findPreds for a whole batch,
// sharing one image map: a round fetches every node any cursor needs and
// is missing, deduplicated in first-need order, then all cursors advance
// as far as the images allow.
type slWalker struct {
	s       *SkipList
	keys    []uint64
	vals    [][]byte
	found   []bool
	images  map[uint64]*slNode
	curs    []slCursor
	need    []uint64
	needSet map[uint64]bool
}

func (s *SkipList) newGetWalker(keys []uint64, vals [][]byte, found []bool) getWalker {
	w := &slWalker{
		s: s, keys: keys, vals: vals, found: found,
		images:  make(map[uint64]*slNode),
		curs:    make([]slCursor, len(keys)),
		needSet: make(map[uint64]bool),
	}
	for i := range w.curs {
		w.curs[i] = slCursor{cur: s.head, level: SkipListMaxLevel - 1}
	}
	w.require(s.head)
	return w
}

func (s *SkipList) readValidate() bool { return false }

func (w *slWalker) require(addr uint64) {
	if !w.needSet[addr] {
		w.needSet[addr] = true
		w.need = append(w.need, addr)
	}
}

func (w *slWalker) next() (fetchReq, bool) {
	if len(w.need) == 0 {
		return fetchReq{}, false
	}
	return fetchReq{addrs: w.need, unit: w.s.nodeSize(), cacheable: false}, true
}

func (w *slWalker) absorb(bufs [][]byte) error {
	for j, buf := range bufs {
		addr := w.need[j]
		n, err := w.s.decodeNode(buf)
		if err != nil {
			return err
		}
		w.images[addr] = n
		if n.level >= slCacheLevel || addr == w.s.head {
			w.s.h.CachePut(addr, buf)
		}
	}
	w.need = w.need[:0]
	w.needSet = make(map[uint64]bool)
	for i := range w.curs {
		w.advance(i)
	}
	return nil
}

// advance pushes cursor i down the list until it completes or needs a
// node image the walker has not fetched yet.
func (w *slWalker) advance(i int) {
	c := &w.curs[i]
	if c.done {
		return
	}
	key := w.keys[i]
	curN := w.images[c.cur]
	if curN == nil {
		w.require(c.cur)
		return
	}
	for c.level >= 0 {
		nxt := curN.next[c.level]
		if nxt == 0 {
			c.level--
			continue
		}
		nxtN, ok := w.images[nxt]
		if !ok {
			w.require(nxt)
			return
		}
		if nxtN.key < key {
			c.cur, curN = nxt, nxtN
			continue
		}
		if nxtN.key == key {
			w.vals[i], w.found[i] = nxtN.val, true
			c.done = true
			return
		}
		c.level--
	}
	c.done = true
}

// GetMulti looks a batch of keys up with posted-verb parallelism: every
// round fetches all nodes the batched descent needs next in one doorbell
// group. Lock-free like Get — readers freshen their cache epoch and never
// validate. Results index-match keys.
func (s *SkipList) GetMulti(keys []uint64) ([][]byte, []bool, error) {
	s.h.Conn().Frontend().ChargeOp()
	if !s.writer {
		if err := s.h.ReaderLock(); err != nil {
			return nil, nil, err
		}
	}
	vals := make([][]byte, len(keys))
	found := make([]bool, len(keys))
	if err := runWalker(s.h, s.newGetWalker(keys, vals, found)); err != nil {
		return nil, nil, err
	}
	return vals, found, nil
}

// --- binary search tree -------------------------------------------------

// bstCursor is one key's descent position.
type bstCursor struct {
	cur  uint64
	done bool
}

// bstWalker descends the tree level-synchronously: all active cursors sit
// at the same depth each round, so the round shares the adaptive level
// policy's caching decision for that depth. The first round fetches the
// root pointer.
type bstWalker struct {
	t     *BST
	keys  []uint64
	vals  [][]byte
	found []bool
	curs  []bstCursor
	addrs []uint64 // deduplicated addresses of the pending round
	depth int      // -1 = root pointer round pending
}

func (t *BST) newGetWalker(keys []uint64, vals [][]byte, found []bool) getWalker {
	return &bstWalker{t: t, keys: keys, vals: vals, found: found,
		curs: make([]bstCursor, len(keys)), depth: -1}
}

func (t *BST) readValidate() bool { return true }

func (w *bstWalker) next() (fetchReq, bool) {
	if w.depth < 0 {
		return fetchReq{addrs: []uint64{w.t.h.RootAddr()}, unit: 8, cacheable: true}, true
	}
	seen := make(map[uint64]bool)
	w.addrs = w.addrs[:0]
	for i := range w.curs {
		c := &w.curs[i]
		if c.done || seen[c.cur] {
			continue
		}
		seen[c.cur] = true
		w.addrs = append(w.addrs, c.cur)
	}
	if len(w.addrs) == 0 {
		return fetchReq{}, false
	}
	return fetchReq{addrs: w.addrs, unit: w.t.nodeSize(), cacheable: w.t.pol.cacheable(w.depth)}, true
}

func (w *bstWalker) absorb(bufs [][]byte) error {
	if w.depth < 0 {
		w.depth = 0
		root := binary.LittleEndian.Uint64(bufs[0])
		for i := range w.curs {
			if root == 0 {
				w.curs[i].done = true
			} else {
				w.curs[i].cur = root
			}
		}
		return nil
	}
	nodes := make(map[uint64]bstNode, len(bufs))
	for j, buf := range bufs {
		n, err := w.t.decodeNode(buf)
		if err != nil {
			return err
		}
		nodes[w.addrs[j]] = n
	}
	for i := range w.curs {
		c := &w.curs[i]
		if c.done {
			continue
		}
		n := nodes[c.cur]
		key := w.keys[i]
		switch {
		case key == n.key:
			w.vals[i], w.found[i] = n.val, true
			c.done = true
		case key < n.key:
			if n.left == 0 {
				c.done = true
			} else {
				c.cur = n.left
			}
		default:
			if n.right == 0 {
				c.done = true
			} else {
				c.cur = n.right
			}
		}
	}
	w.depth++
	return nil
}

// GetMulti looks a batch of keys up under the retry seqlock with
// posted-verb parallelism: the batch descends level-synchronously, one
// doorbell group of independent node reads per tree level. Results
// index-match keys.
func (t *BST) GetMulti(keys []uint64) ([][]byte, []bool, error) {
	t.h.Conn().Frontend().ChargeOp()
	vals := make([][]byte, len(keys))
	found := make([]bool, len(keys))
	err := readRetry(t.h, func() error {
		for i := range vals {
			vals[i], found[i] = nil, false
		}
		return runWalker(t.h, t.newGetWalker(keys, vals, found))
	})
	t.pol.observe(t.h.Conn().Frontend().Stats())
	if err != nil {
		return nil, nil, err
	}
	return vals, found, nil
}
