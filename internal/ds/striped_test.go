package ds

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"asymnvm/internal/core"
)

// TestStripedHandoff checks the shared-lock writer handoff: front-end A
// creates a striped hash table and writes half the keys, front-end B
// attaches as a second writer and writes the other half plus overwrites
// of A's keys, and both a fresh reader and A itself (after re-acquiring
// the stripe locks) must observe B's writes.
func TestStripedHandoff(t *testing.T) {
	r := newRig(t)
	ca := r.conn(1, core.ModeRC(1<<20))
	sa, err := CreateStriped(ca, KindHashTable, "str", 4, Options{Create: testCreate, Buckets: 1 << 6})
	if err != nil {
		t.Fatal(err)
	}
	if sa.Stripes() != 4 {
		t.Fatalf("stripes = %d, want 4", sa.Stripes())
	}
	const keys = 64
	for k := uint64(0); k < keys/2; k++ {
		if err := sa.Put(k, val(int(k))); err != nil {
			t.Fatal(err)
		}
	}

	cb := r.conn(2, core.ModeRC(1<<20))
	sb, err := OpenStriped(cb, "str", true, Options{Create: testCreate, Buckets: 1 << 6})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(keys / 2); k < keys; k++ {
		if err := sb.Put(k, val(int(k))); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite a few of A's keys from B: the stripe handoff must carry
	// the overlay role over, not fork the log.
	for k := uint64(0); k < 8; k++ {
		if err := sb.Put(k, val(1000+int(k))); err != nil {
			t.Fatal(err)
		}
	}

	check := func(tag string, s *Striped) {
		t.Helper()
		for k := uint64(0); k < keys; k++ {
			want := val(int(k))
			if k < 8 {
				want = val(1000 + int(k))
			}
			got, ok, err := s.Get(k)
			if err != nil {
				t.Fatalf("%s: get %d: %v", tag, k, err)
			}
			if !ok || string(got) != string(want) {
				t.Fatalf("%s: key %d = %q ok=%v, want %q", tag, k, got, ok, want)
			}
		}
	}
	rd := r.conn(3, core.ModeRC(1<<20))
	sr, err := OpenStriped(rd, "str", false, Options{Create: testCreate, Buckets: 1 << 6})
	if err != nil {
		t.Fatal(err)
	}
	check("reader", sr)
	// A's next writes re-acquire stripe locks and resync, so its view
	// includes B's overwrites.
	if err := sa.AddMulti([]uint64{100, 101}, 1); err != nil {
		t.Fatal(err)
	}
	check("writer-a", sa)
}

// TestStripedPutMultiCrossStripe exercises the ordered multi-stripe path
// single-threaded: batches that span every stripe must land atomically
// and release all locks for the next batch.
func TestStripedPutMultiCrossStripe(t *testing.T) {
	r := newRig(t)
	c := r.conn(1, core.ModeRC(1<<20))
	s, err := CreateStriped(c, KindHashTable, "strm", 8, Options{Create: testCreate, Buckets: 1 << 6})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, 32)
	vals := make([][]byte, 32)
	for round := 0; round < 4; round++ {
		for i := range keys {
			keys[i] = uint64(i)
			vals[i] = val(round*100 + i)
		}
		if err := s.PutMulti(keys, vals); err != nil {
			t.Fatal(err)
		}
	}
	got, found, err := s.GetMulti(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if !found[i] || string(got[i]) != string(val(300+i)) {
			t.Fatalf("key %d = %q found=%v", keys[i], got[i], found[i])
		}
	}
}

// TestStripedOrderedAcquisitionStress is the -race contract test for
// deadlock-free ordered stripe acquisition: several writer front-ends
// issue randomized multi-stripe read-modify-write batches over
// overlapping key sets. Completion means no deadlock; the final counter
// values equaling the issued increments means no lost update — a stripe
// lock handoff that failed to carry the previous holder's state forward
// would drop increments.
func TestStripedOrderedAcquisitionStress(t *testing.T) {
	r := newRig(t)
	const (
		writers = 4
		keys    = 32
		rounds  = 60
	)
	cc := r.conn(1, core.ModeRC(1<<20))
	if _, err := CreateStriped(cc, KindHashTable, "stress", 8, Options{Create: testCreate, Buckets: 1 << 6}); err != nil {
		t.Fatal(err)
	}
	// Attach every writer before any operation starts (writer attach
	// requires a quiescent structure).
	ss := make([]*Striped, writers)
	for w := 0; w < writers; w++ {
		c := r.conn(uint16(2+w), core.ModeRC(1<<20))
		s, err := OpenStriped(c, "stress", true, Options{Create: testCreate, Buckets: 1 << 6})
		if err != nil {
			t.Fatal(err)
		}
		ss[w] = s
	}
	issued := make([][]uint64, writers) // per-writer increments per key
	for w := range issued {
		issued[w] = make([]uint64, keys)
	}
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			batch := make([]uint64, 0, 4)
			for i := 0; i < rounds; i++ {
				batch = batch[:0]
				n := 2 + rng.Intn(3)
				for len(batch) < n {
					k := uint64(rng.Intn(keys))
					dup := false
					for _, b := range batch {
						if b == k {
							dup = true
						}
					}
					if !dup {
						batch = append(batch, k)
					}
				}
				if err := ss[w].AddMulti(batch, 1); err != nil {
					errs <- fmt.Errorf("writer %d round %d: %w", w, i, err)
					return
				}
				for _, k := range batch {
					issued[w][k]++
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	rd := r.conn(9, core.ModeRC(1<<20))
	sr, err := OpenStriped(rd, "stress", false, Options{Create: testCreate, Buckets: 1 << 6})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < keys; k++ {
		var want uint64
		for w := 0; w < writers; w++ {
			want += issued[w][k]
		}
		got, ok, err := sr.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		var v uint64
		if ok {
			v = binary.LittleEndian.Uint64(got)
		}
		if v != want {
			t.Errorf("key %d: counter %d, want %d (lost update)", k, v, want)
		}
	}
}

// TestMVMultiConcurrentWriters runs several lock-free MV writers against
// one shared tree: disjoint key ranges, concurrent goroutines, root
// publication by CAS. Every writer's last value per key must be visible
// to a plain MV reader afterwards — a lost CAS that was not re-executed
// would drop a whole path-copied version.
func TestMVMultiConcurrentWriters(t *testing.T) {
	r := newRig(t)
	cc := r.conn(1, core.ModeRC(1<<20))
	seedT, err := CreateMVBST(cc, "mvm", Options{Create: testCreate})
	if err != nil {
		t.Fatal(err)
	}
	if err := seedT.Put(1<<40, val(0)); err != nil { // non-empty root
		t.Fatal(err)
	}
	if err := seedT.Close(); err != nil {
		t.Fatal(err)
	}

	const writers = 3
	const perWriter = 24
	ms := make([]*MVMulti, writers)
	for w := 0; w < writers; w++ {
		c := r.conn(uint16(2+w), core.ModeRC(1<<20))
		m, err := OpenMVMulti(c, KindMVBST, "mvm", Options{Create: testCreate})
		if err != nil {
			t.Fatal(err)
		}
		ms[w] = m
	}
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := uint64(w*1000 + i)
				if err := ms[w].Put(k, val(w*1000+i)); err != nil {
					errs <- fmt.Errorf("writer %d put %d: %w", w, k, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	rd := r.conn(9, core.ModeRC(1<<20))
	tr, err := OpenMVBST(rd, "mvm", false, Options{Create: testCreate})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			k := uint64(w*1000 + i)
			got, ok, err := tr.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			if !ok || string(got) != string(val(w*1000+i)) {
				t.Fatalf("key %d = %q ok=%v, want %q", k, got, ok, val(w*1000+i))
			}
		}
	}
}
