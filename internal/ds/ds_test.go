package ds

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"asymnvm/internal/backend"
	"asymnvm/internal/clock"
	"asymnvm/internal/core"
	"asymnvm/internal/nvm"
)

var zprof = clock.ZeroProfile()

var testCreate = core.CreateOptions{MemLogSize: 1 << 20, OpLogSize: 512 << 10}

type rig struct {
	t  *testing.T
	bk *backend.Backend
}

func newRig(t *testing.T) *rig {
	t.Helper()
	dev := nvm.NewDevice(256 << 20)
	bk, err := backend.New(dev, backend.Options{ID: 0, Profile: &zprof})
	if err != nil {
		t.Fatal(err)
	}
	bk.Start()
	t.Cleanup(func() {
		bk.Stop()
		if err := bk.ReplicationError(); err != nil {
			t.Errorf("backend background error: %v", err)
		}
	})
	return &rig{t: t, bk: bk}
}

func (r *rig) conn(id uint16, mode core.Mode) *core.Conn {
	fe := core.NewFrontend(core.FrontendOptions{ID: id, Mode: mode, Profile: &zprof})
	c, err := fe.Connect(r.bk)
	if err != nil {
		r.t.Fatal(err)
	}
	return c
}

func val(i int) []byte { return []byte(fmt.Sprintf("value-%08d", i)) }

// --- stack ---

func TestStackLIFO(t *testing.T) {
	r := newRig(t)
	c := r.conn(1, core.ModeR())
	s, err := CreateStack(c, "st", Options{Create: testCreate})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := s.Push(val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 49; i >= 0; i-- {
		v, ok, err := s.Pop()
		if err != nil || !ok {
			t.Fatalf("pop %d: ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(v, val(i)) {
			t.Fatalf("pop %d: got %q", i, v)
		}
	}
	if _, ok, _ := s.Pop(); ok {
		t.Fatal("pop from empty stack returned a value")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStackAnnihilation(t *testing.T) {
	r := newRig(t)
	c := r.conn(1, core.ModeRCB(1<<20, 1024))
	s, err := CreateStack(c, "annul", Options{Create: testCreate})
	if err != nil {
		t.Fatal(err)
	}
	fe := c.Frontend()
	for i := 0; i < 100; i++ {
		if err := s.Push(val(i)); err != nil {
			t.Fatal(err)
		}
		v, ok, err := s.Pop()
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("pop %d: %v %v %q", i, ok, err, v)
		}
	}
	st := fe.Stats().Snapshot()
	if st.OpsAnnulled < 190 {
		t.Fatalf("expected ~200 annulled ops, got %d", st.OpsAnnulled)
	}
	if st.MemLogs != 0 {
		t.Fatalf("fully annulled push/pop pairs must produce no memory logs, got %d", st.MemLogs)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStackPersistsAcrossReopen(t *testing.T) {
	r := newRig(t)
	c := r.conn(1, core.ModeR())
	s, err := CreateStack(c, "persist", Options{Create: testCreate})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		_ = s.Push(val(i))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	c2 := r.conn(2, core.ModeR())
	s2, err := OpenStack(c2, "persist", Options{Create: testCreate})
	if err != nil {
		t.Fatal(err)
	}
	for i := 9; i >= 0; i-- {
		v, ok, err := s2.Pop()
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("reopened pop %d: %v %v %q", i, ok, err, v)
		}
	}
	_ = s2.Close()
}

// --- queue ---

func TestQueueFIFO(t *testing.T) {
	r := newRig(t)
	c := r.conn(1, core.ModeR())
	q, err := CreateQueue(c, "q", Options{Create: testCreate})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := q.Enqueue(val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		v, ok, err := q.Dequeue()
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("dequeue %d: %v %v %q", i, ok, err, v)
		}
	}
	if _, ok, _ := q.Dequeue(); ok {
		t.Fatal("dequeue from empty queue returned a value")
	}
	_ = q.Close()
}

func TestQueueInterleaved(t *testing.T) {
	r := newRig(t)
	c := r.conn(1, core.ModeRCB(1<<20, 64))
	q, err := CreateQueue(c, "qi", Options{Create: testCreate})
	if err != nil {
		t.Fatal(err)
	}
	// Model queue for comparison.
	var model [][]byte
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		if rng.Intn(2) == 0 || len(model) == 0 {
			v := val(i)
			if err := q.Enqueue(v); err != nil {
				t.Fatal(err)
			}
			model = append(model, v)
		} else {
			v, ok, err := q.Dequeue()
			if err != nil || !ok {
				t.Fatalf("dequeue: %v %v", ok, err)
			}
			if !bytes.Equal(v, model[0]) {
				t.Fatalf("fifo order broken at %d: got %q want %q", i, v, model[0])
			}
			model = model[1:]
		}
	}
	if q.Len() != len(model) {
		t.Fatalf("len %d, model %d", q.Len(), len(model))
	}
	_ = q.Close()
}

func TestQueuePersistsAcrossReopen(t *testing.T) {
	r := newRig(t)
	c := r.conn(1, core.ModeRCB(1<<20, 16))
	q, _ := CreateQueue(c, "qp", Options{Create: testCreate})
	for i := 0; i < 20; i++ {
		_ = q.Enqueue(val(i))
	}
	_ = q.Close()
	c2 := r.conn(2, core.ModeR())
	q2, err := OpenQueue(c2, "qp", Options{Create: testCreate})
	if err != nil {
		t.Fatal(err)
	}
	if q2.Len() != 20 {
		t.Fatalf("reopened len %d", q2.Len())
	}
	for i := 0; i < 20; i++ {
		v, ok, _ := q2.Dequeue()
		if !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("reopened dequeue %d: %q", i, v)
		}
	}
	_ = q2.Close()
}

// --- generic KV behaviour, run against every index structure ---

type kvCase struct {
	name string
	make func(c *core.Conn, name string) (KV, error)
	open func(c *core.Conn, name string, writer bool) (KV, error)
}

func kvCases() []kvCase {
	opts := Options{Create: testCreate, Buckets: 512}
	return []kvCase{
		{"hashtable",
			func(c *core.Conn, n string) (KV, error) { return CreateHashTable(c, n, opts) },
			func(c *core.Conn, n string, w bool) (KV, error) { return OpenHashTable(c, n, w, opts) }},
		{"skiplist",
			func(c *core.Conn, n string) (KV, error) { return CreateSkipList(c, n, opts) },
			func(c *core.Conn, n string, w bool) (KV, error) { return OpenSkipList(c, n, w, opts) }},
		{"bst",
			func(c *core.Conn, n string) (KV, error) { return CreateBST(c, n, opts) },
			func(c *core.Conn, n string, w bool) (KV, error) { return OpenBST(c, n, w, opts) }},
		{"bptree",
			func(c *core.Conn, n string) (KV, error) { return CreateBPTree(c, n, opts) },
			func(c *core.Conn, n string, w bool) (KV, error) { return OpenBPTree(c, n, w, opts) }},
		{"mvbst",
			func(c *core.Conn, n string) (KV, error) { return CreateMVBST(c, n, opts) },
			func(c *core.Conn, n string, w bool) (KV, error) { return OpenMVBST(c, n, w, opts) }},
		{"mvbptree",
			func(c *core.Conn, n string) (KV, error) { return CreateMVBPTree(c, n, opts) },
			func(c *core.Conn, n string, w bool) (KV, error) { return OpenMVBPTree(c, n, w, opts) }},
	}
}

func TestKVPutGetOracle(t *testing.T) {
	for _, tc := range kvCases() {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t)
			c := r.conn(1, core.ModeRC(4<<20))
			kv, err := tc.make(c, "kv-"+tc.name)
			if err != nil {
				t.Fatal(err)
			}
			oracle := map[uint64][]byte{}
			rng := rand.New(rand.NewSource(42))
			for i := 0; i < 1200; i++ {
				k := uint64(rng.Intn(400)) + 1
				v := val(rng.Intn(100000))
				if err := kv.Put(k, v); err != nil {
					t.Fatalf("put %d: %v", k, err)
				}
				oracle[k] = v
			}
			for k, want := range oracle {
				got, ok, err := kv.Get(k)
				if err != nil {
					t.Fatalf("get %d: %v", k, err)
				}
				if !ok {
					t.Fatalf("key %d missing", k)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("key %d: got %q want %q", k, got, want)
				}
			}
			if _, ok, _ := kv.Get(999999); ok {
				t.Fatal("absent key reported present")
			}
			if err := kv.Flush(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestKVBatchedMatchesOracle(t *testing.T) {
	for _, tc := range kvCases() {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t)
			c := r.conn(1, core.ModeRCB(4<<20, 128))
			kv, err := tc.make(c, "kvb-"+tc.name)
			if err != nil {
				t.Fatal(err)
			}
			oracle := map[uint64][]byte{}
			rng := rand.New(rand.NewSource(9))
			for i := 0; i < 600; i++ {
				k := uint64(rng.Intn(300)) + 1
				v := val(i)
				if err := kv.Put(k, v); err != nil {
					t.Fatal(err)
				}
				oracle[k] = v
				// The writer must read its own unflushed writes.
				if got, ok, err := kv.Get(k); err != nil || !ok || !bytes.Equal(got, v) {
					t.Fatalf("read-your-writes broken for %d: %v %v", k, ok, err)
				}
			}
			if err := kv.Flush(); err != nil {
				t.Fatal(err)
			}
			for k, want := range oracle {
				got, ok, _ := kv.Get(k)
				if !ok || !bytes.Equal(got, want) {
					t.Fatalf("after flush key %d wrong", k)
				}
			}
		})
	}
}

func TestKVVisibleToFreshReaderAfterDrain(t *testing.T) {
	for _, tc := range kvCases() {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t)
			c := r.conn(1, core.ModeRCB(4<<20, 32))
			kv, err := tc.make(c, "kvr-"+tc.name)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= 200; i++ {
				if err := kv.Put(uint64(i), val(i)); err != nil {
					t.Fatal(err)
				}
			}
			type drainer interface{ Drain() error }
			if err := kv.(drainer).Drain(); err != nil {
				t.Fatal(err)
			}
			// A different front-end node opens read-only and must see
			// everything straight from back-end NVM.
			c2 := r.conn(2, core.ModeRC(4<<20))
			rd, err := tc.open(c2, "kvr-"+tc.name, false)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= 200; i++ {
				got, ok, err := rd.Get(uint64(i))
				if err != nil {
					t.Fatal(err)
				}
				if !ok || !bytes.Equal(got, val(i)) {
					t.Fatalf("reader missing key %d (ok=%v)", i, ok)
				}
			}
		})
	}
}

func TestHashTableDelete(t *testing.T) {
	r := newRig(t)
	c := r.conn(1, core.ModeRC(1<<20))
	ht, err := CreateHashTable(c, "del", Options{Create: testCreate, Buckets: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		_ = ht.Put(uint64(i), val(i))
	}
	for i := 1; i <= 100; i += 2 {
		ok, err := ht.Delete(uint64(i))
		if err != nil || !ok {
			t.Fatalf("delete %d: %v %v", i, ok, err)
		}
	}
	if ok, _ := ht.Delete(1); ok {
		t.Fatal("double delete succeeded")
	}
	for i := 1; i <= 100; i++ {
		_, ok, _ := ht.Get(uint64(i))
		if i%2 == 1 && ok {
			t.Fatalf("deleted key %d still present", i)
		}
		if i%2 == 0 && !ok {
			t.Fatalf("kept key %d lost", i)
		}
	}
	_ = ht.Close()
}

func TestBPTreeSplitsDeep(t *testing.T) {
	r := newRig(t)
	c := r.conn(1, core.ModeRC(8<<20))
	bt, err := CreateBPTree(c, "deep", Options{Create: core.CreateOptions{MemLogSize: 4 << 20, OpLogSize: 2 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	// Sequential keys force a steady stream of splits and root growth.
	n := 5000
	for i := 1; i <= n; i++ {
		if err := bt.Put(uint64(i), val(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 1; i <= n; i++ {
		got, ok, err := bt.Get(uint64(i))
		if err != nil || !ok || !bytes.Equal(got, val(i)) {
			t.Fatalf("get %d after splits: ok=%v err=%v", i, ok, err)
		}
	}
	// Range scan across leaves.
	keys, vals, err := bt.Scan(100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 50 || keys[0] != 100 || keys[49] != 149 {
		t.Fatalf("scan wrong: %d keys, first=%d last=%d", len(keys), keys[0], keys[len(keys)-1])
	}
	if !bytes.Equal(vals[0], val(100)) {
		t.Fatal("scan values wrong")
	}
	_ = bt.Close()
}

func TestBSTVectorPut(t *testing.T) {
	r := newRig(t)
	c := r.conn(1, core.ModeRCB(4<<20, 256))
	bt, err := CreateBST(c, "vec", Options{Create: testCreate})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	oracle := map[uint64][]byte{}
	for round := 0; round < 5; round++ {
		var keys []uint64
		var vals [][]byte
		for i := 0; i < 100; i++ {
			k := uint64(rng.Intn(1000)) + 1
			v := val(rng.Intn(100000))
			keys = append(keys, k)
			vals = append(vals, v)
		}
		// Later duplicates win within a vector; mimic by applying in
		// sorted order like the implementation, so use unique keys only.
		seen := map[uint64]bool{}
		var uk []uint64
		var uv [][]byte
		for i, k := range keys {
			if !seen[k] {
				seen[k] = true
				uk = append(uk, k)
				uv = append(uv, vals[i])
			}
		}
		if err := bt.VectorPut(uk, uv); err != nil {
			t.Fatal(err)
		}
		for i, k := range uk {
			oracle[k] = uv[i]
		}
	}
	if err := bt.Flush(); err != nil {
		t.Fatal(err)
	}
	for k, want := range oracle {
		got, ok, _ := bt.Get(k)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("vector key %d wrong (ok=%v)", k, ok)
		}
	}
	_ = bt.Close()
}

func TestBPTreeVectorPut(t *testing.T) {
	r := newRig(t)
	c := r.conn(1, core.ModeRCB(4<<20, 256))
	bt, err := CreateBPTree(c, "vecb", Options{Create: testCreate})
	if err != nil {
		t.Fatal(err)
	}
	var keys []uint64
	var vals [][]byte
	for i := 1; i <= 500; i++ {
		keys = append(keys, uint64(i*7%1000+1))
		vals = append(vals, val(i))
	}
	seen := map[uint64]bool{}
	var uk []uint64
	var uv [][]byte
	for i, k := range keys {
		if !seen[k] {
			seen[k] = true
			uk = append(uk, k)
			uv = append(uv, vals[i])
		}
	}
	if err := bt.VectorPut(uk, uv); err != nil {
		t.Fatal(err)
	}
	if err := bt.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, k := range uk {
		got, ok, _ := bt.Get(k)
		if !ok || !bytes.Equal(got, uv[i]) {
			t.Fatalf("vector key %d wrong", k)
		}
	}
	_ = bt.Close()
}

func TestMVBSTReaderSeesFrozenVersions(t *testing.T) {
	r := newRig(t)
	cW := r.conn(1, core.ModeR())
	mv, err := CreateMVBST(cW, "frozen", Options{Create: testCreate})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		_ = mv.Put(uint64(i), val(i))
	}
	if err := mv.Drain(); err != nil {
		t.Fatal(err)
	}
	cR := r.conn(2, core.ModeRC(1<<20))
	rd, err := OpenMVBST(cR, "frozen", false, Options{Create: testCreate})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		got, ok, err := rd.Get(uint64(i))
		if err != nil || !ok || !bytes.Equal(got, val(i)) {
			t.Fatalf("mv reader key %d: ok=%v err=%v", i, ok, err)
		}
	}
	// Update every key; after drain the reader observes the new version.
	for i := 1; i <= 50; i++ {
		_ = mv.Put(uint64(i), val(1000+i))
	}
	if err := mv.Drain(); err != nil {
		t.Fatal(err)
	}
	got, ok, _ := rd.Get(25)
	if !ok || !bytes.Equal(got, val(1025)) {
		t.Fatalf("mv reader did not observe new version: %q", got)
	}
}

func TestPendingOpReexecution(t *testing.T) {
	// An op log is persisted but the memory logs never flush (front-end
	// dies with a full batch buffer). Reopening must re-execute it.
	r := newRig(t)
	c := r.conn(1, core.ModeRCB(1<<20, 1000))
	ht, err := CreateHashTable(c, "pend", Options{Create: testCreate, Buckets: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Committed baseline; Close releases the coarse writer lock.
	_ = ht.Put(1, val(1))
	if err := ht.Close(); err != nil {
		t.Fatal(err)
	}
	// These ops' op logs are group-buffered too… force them out by
	// writing enough ops then flushing ONLY the op buffer via a direct
	// handle flush of ops — simplest honest path: use batch=1 front-end
	// for op persistence but kill it before EndOp flushes the tx.
	c2 := r.conn(2, core.ModeR())
	ht2, err := OpenHashTable(c2, "pend", true, Options{Create: testCreate, Buckets: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: write op log for key 2 but crash before the tx flush.
	h := ht2.Handle()
	if _, err := h.OpLog(OpPut, kvParams(2, val(2))); err != nil {
		t.Fatal(err)
	}
	// Front-end 2 "crashes" here: no EndOp, no tx. Its lock is stale.
	c3 := r.conn(3, core.ModeR())
	h3, err := c3.Open("pend", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := h3.BreakLock(2); err != nil {
		t.Fatal(err)
	}
	ht3, err := OpenHashTable(c3, "pend", true, Options{Create: testCreate, Buckets: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := ht3.Drain(); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ht3.Get(2)
	if err != nil || !ok || !bytes.Equal(got, val(2)) {
		t.Fatalf("pending op not re-executed: ok=%v err=%v", ok, err)
	}
	if got, ok, _ := ht3.Get(1); !ok || !bytes.Equal(got, val(1)) {
		t.Fatal("baseline key lost")
	}
}

func TestPartitionedAcrossBackends(t *testing.T) {
	prof := clock.ZeroProfile()
	var bks []*backend.Backend
	for i := 0; i < 3; i++ {
		dev := nvm.NewDevice(64 << 20)
		bk, err := backend.New(dev, backend.Options{ID: uint16(i), Profile: &prof})
		if err != nil {
			t.Fatal(err)
		}
		bk.Start()
		defer bk.Stop()
		bks = append(bks, bk)
	}
	fe := core.NewFrontend(core.FrontendOptions{ID: 1, Mode: core.ModeRC(4 << 20), Profile: &prof})
	var conns []*core.Conn
	for _, bk := range bks {
		c, err := fe.Connect(bk)
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	p, err := CreatePartitioned(conns, KindBPTree, "pkv", 6, Options{Create: testCreate})
	if err != nil {
		t.Fatal(err)
	}
	oracle := map[uint64][]byte{}
	for i := 1; i <= 600; i++ {
		k := uint64(i * 2654435761)
		if err := p.Put(k, val(i)); err != nil {
			t.Fatal(err)
		}
		oracle[k] = val(i)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	for k, want := range oracle {
		got, ok, _ := p.Get(k)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("partitioned key %d wrong", k)
		}
	}
	// Reopen via the persisted mapping meta.
	p2, err := OpenPartitioned(conns, "pkv", false, Options{Create: testCreate})
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Parts()) != 6 {
		t.Fatalf("reopened %d partitions, want 6", len(p2.Parts()))
	}
	got, ok, _ := p2.Get(2654435761)
	if !ok || !bytes.Equal(got, val(1)) {
		t.Fatal("reopened partitioned get wrong")
	}
}

// Property-style test: random op streams against every KV keep matching a
// model map, across a mid-stream flush and reader validation.
func TestKVRandomizedOracle(t *testing.T) {
	for _, tc := range kvCases() {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t)
			c := r.conn(1, core.ModeRCB(4<<20, 64))
			kv, err := tc.make(c, "rand-"+tc.name)
			if err != nil {
				t.Fatal(err)
			}
			oracle := map[uint64][]byte{}
			rng := rand.New(rand.NewSource(12345))
			for i := 0; i < 2000; i++ {
				switch rng.Intn(3) {
				case 0, 1:
					k := uint64(rng.Intn(500)) + 1
					v := val(rng.Int())
					if err := kv.Put(k, v); err != nil {
						t.Fatal(err)
					}
					oracle[k] = v
				case 2:
					k := uint64(rng.Intn(500)) + 1
					got, ok, err := kv.Get(k)
					if err != nil {
						t.Fatal(err)
					}
					want, wok := oracle[k]
					if ok != wok || (ok && !bytes.Equal(got, want)) {
						t.Fatalf("divergence at op %d key %d (ok=%v wok=%v)", i, k, ok, wok)
					}
				}
				if i == 1000 {
					if err := kv.Flush(); err != nil {
						t.Fatal(err)
					}
				}
			}
		})
	}
}
