package ds

import (
	"encoding/binary"
	"fmt"
	"sort"

	"asymnvm/internal/backend"
	"asymnvm/internal/core"
	"asymnvm/internal/logrec"
)

// BPTree is the lock-based B+Tree of the evaluation, with fan-out 32 as
// in §9.1. Leaves hold pointers to fixed-capacity value blobs (each blob
// is its own write unit, logged with the pointer-form memory entry when
// batching is on); internal nodes hold child pointers. All nodes share
// one fixed layout so any node is a single read unit:
//
//	{n u16, isLeaf u8, pad5, next u64, keys[31]u64, ptrs[32]u64}
//
// The upper levels are cached under the adaptive level policy of §8.3 —
// the root is on every path; leaves are cold.
const (
	bptMaxKeys = 31
	bptMaxKids = 32
	bptHdr     = 16
	bptKeysOff = 16
	bptPtrsOff = bptKeysOff + 8*bptMaxKeys
	bptNode    = bptPtrsOff + 8*bptMaxKids // 520 bytes
)

// BPTree is a persistent B+Tree.
type BPTree struct {
	h      *core.Handle
	w      writerSession
	cap    int
	pol    *levelPolicy
	writer bool
}

// bptNodeT is the in-memory image; the arrays carry one overflow slot so
// an insert can exceed the wire capacity momentarily before splitting.
type bptNodeT struct {
	n      int
	isLeaf bool
	next   uint64
	keys   [bptMaxKeys + 1]uint64
	ptrs   [bptMaxKids + 1]uint64
}

func encodeBPT(n *bptNodeT) []byte {
	buf := make([]byte, bptNode)
	binary.LittleEndian.PutUint16(buf, uint16(n.n))
	if n.isLeaf {
		buf[2] = 1
	}
	binary.LittleEndian.PutUint64(buf[8:], n.next)
	for i := 0; i < bptMaxKeys; i++ {
		binary.LittleEndian.PutUint64(buf[bptKeysOff+8*i:], n.keys[i])
	}
	for i := 0; i < bptMaxKids; i++ {
		binary.LittleEndian.PutUint64(buf[bptPtrsOff+8*i:], n.ptrs[i])
	}
	return buf
}

func decodeBPT(buf []byte) (*bptNodeT, error) {
	n := &bptNodeT{}
	n.n = int(binary.LittleEndian.Uint16(buf))
	n.isLeaf = buf[2] == 1
	n.next = binary.LittleEndian.Uint64(buf[8:])
	if n.n > bptMaxKeys {
		return nil, fmt.Errorf("ds: corrupt b+tree node (n=%d)", n.n)
	}
	for i := 0; i < bptMaxKeys; i++ {
		n.keys[i] = binary.LittleEndian.Uint64(buf[bptKeysOff+8*i:])
	}
	for i := 0; i < bptMaxKids; i++ {
		n.ptrs[i] = binary.LittleEndian.Uint64(buf[bptPtrsOff+8*i:])
	}
	return n, nil
}

// CreateBPTree registers a new B+Tree with an empty leaf as its root.
func CreateBPTree(c *core.Conn, name string, opts Options) (*BPTree, error) {
	opts.fill()
	h, err := c.Create(name, backend.TypeBPTree, opts.Create)
	if err != nil {
		return nil, err
	}
	root, err := c.Calloc(bptNode)
	if err != nil {
		return nil, err
	}
	leaf := &bptNodeT{isLeaf: true}
	if err := h.Write(root, encodeBPT(leaf)); err != nil {
		return nil, err
	}
	if err := h.WriteRoot(root); err != nil {
		return nil, err
	}
	if err := h.Flush(); err != nil {
		return nil, err
	}
	return newBPTree(h, opts, true)
}

// OpenBPTree attaches to an existing B+Tree.
func OpenBPTree(c *core.Conn, name string, writer bool, opts Options) (*BPTree, error) {
	opts.fill()
	h, err := c.Open(name, writer)
	if err != nil {
		return nil, err
	}
	t, err := newBPTree(h, opts, writer)
	if err != nil {
		return nil, err
	}
	if writer {
		if _, err := ReplayPending(h, t); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func newBPTree(h *core.Handle, opts Options, writer bool) (*BPTree, error) {
	t := &BPTree{h: h, w: writerSession{h: h, lockPerOp: opts.LockPerOp},
		cap: opts.ValueCap, pol: newLevelPolicy(), writer: writer}
	if opts.FlatCache {
		t.pol = newFlatPolicy()
	}
	if writer && !opts.LockPerOp {
		if err := h.WriterLock(); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Handle exposes the underlying framework handle.
func (t *BPTree) Handle() *core.Handle { return t.h }

func (t *BPTree) readNode(addr uint64, depth int) (*bptNodeT, error) {
	buf, err := t.h.Read(addr, bptNode, t.pol.cacheable(depth))
	if err != nil {
		return nil, err
	}
	return decodeBPT(buf)
}

func (t *BPTree) writeNode(addr uint64, n *bptNodeT) error {
	return t.h.Write(addr, encodeBPT(n))
}

// blobParams encodes {key, blob image} op-log parameters: the blob image
// starts at byte 8, exactly as it will sit in NVM.
func (t *BPTree) blobParams(key uint64, val []byte) []byte {
	p := make([]byte, 8+4+t.cap)
	binary.LittleEndian.PutUint64(p, key)
	binary.LittleEndian.PutUint32(p[8:], uint32(len(val)))
	copy(p[12:], val)
	return p
}

// blobParamsSplit decodes blobParams for replay.
func blobParamsSplit(p []byte) (uint64, []byte, error) {
	if len(p) < 12 {
		return 0, nil, fmt.Errorf("ds: short blob params")
	}
	key := binary.LittleEndian.Uint64(p)
	vlen := int(binary.LittleEndian.Uint32(p[8:]))
	if 12+vlen > len(p) {
		return 0, nil, fmt.Errorf("ds: blob params vlen %d overruns", vlen)
	}
	return key, p[12 : 12+vlen], nil
}

// blobSrcOff is the offset of the blob image inside blobParams.
const blobSrcOff = 8

// writeBlob stores value bytes in a fixed-capacity blob unit; when the
// bytes came from the current op record (opAbs != 0) the memory log uses
// the pointer form ({opAbs, srcOff}) instead of inlining them.
func (t *BPTree) writeBlob(addr uint64, val []byte, opAbs uint64) error {
	padded := make([]byte, t.cap+4)
	binary.LittleEndian.PutUint32(padded, uint32(len(val)))
	copy(padded[4:], val)
	if opAbs != 0 {
		return t.h.WriteFromOp(addr, padded, opAbs, blobSrcOff)
	}
	return t.h.Write(addr, padded)
}

func (t *BPTree) readBlob(addr uint64, cacheable bool) ([]byte, error) {
	buf, err := t.h.Read(addr, t.cap+4, cacheable)
	if err != nil {
		return nil, err
	}
	return t.decodeBlob(buf)
}

func (t *BPTree) decodeBlob(buf []byte) ([]byte, error) {
	vlen := binary.LittleEndian.Uint32(buf)
	if int(vlen) > t.cap {
		return nil, fmt.Errorf("ds: corrupt value blob (vlen=%d)", vlen)
	}
	return append([]byte(nil), buf[4:4+vlen]...), nil
}

// Put inserts or updates key. The op-log parameters embed the exact blob
// image (length prefix + padded value), so the memory log entry for the
// blob can use the pointer form of Figure 3 instead of re-shipping the
// bytes (§4.3's Flag optimization).
func (t *BPTree) Put(key uint64, val []byte) error {
	if len(val) > t.cap {
		return ErrValueTooLarge
	}
	if err := t.w.begin(); err != nil {
		return err
	}
	opAbs, err := t.h.OpLog(OpPut, t.blobParams(key, val))
	if err != nil {
		return err
	}
	if err := t.put(key, val, opAbs); err != nil {
		return err
	}
	t.pol.observe(t.h.Conn().Frontend().Stats())
	return t.w.end()
}

func (t *BPTree) put(key uint64, val []byte, opAbs uint64) error {
	root, err := t.h.ReadRoot()
	if err != nil {
		return err
	}
	promoKey, newNode, err := t.insert(root, 0, key, val, opAbs)
	if err != nil {
		return err
	}
	if newNode != 0 {
		// Root split: a new internal root points at the halves.
		nr := &bptNodeT{n: 1}
		nr.keys[0] = promoKey
		nr.ptrs[0] = root
		nr.ptrs[1] = newNode
		addr, err := t.h.Alloc(bptNode)
		if err != nil {
			return err
		}
		if err := t.writeNode(addr, nr); err != nil {
			return err
		}
		return t.h.WriteRoot(addr)
	}
	return nil
}

// insert descends to the leaf; on overflow it splits and returns the
// separator key and the new right sibling for the parent to absorb.
func (t *BPTree) insert(addr uint64, depth int, key uint64, val []byte, opAbs uint64) (uint64, uint64, error) {
	n, err := t.readNode(addr, depth)
	if err != nil {
		return 0, 0, err
	}
	if n.isLeaf {
		pos := searchKeys(n, key)
		if pos < n.n && n.keys[pos] == key {
			// Update: rewrite the blob only.
			return 0, 0, t.writeBlob(n.ptrs[pos], val, opAbs)
		}
		blob, err := t.h.Alloc(t.cap + 4)
		if err != nil {
			return 0, 0, err
		}
		if err := t.writeBlob(blob, val, opAbs); err != nil {
			return 0, 0, err
		}
		// Shift in.
		for i := n.n; i > pos; i-- {
			n.keys[i] = n.keys[i-1]
			n.ptrs[i] = n.ptrs[i-1]
		}
		n.keys[pos] = key
		n.ptrs[pos] = blob
		n.n++
		if n.n <= bptMaxKeys {
			return 0, 0, t.writeNode(addr, n)
		}
		return t.splitLeaf(addr, n)
	}
	// Internal: pick the child.
	pos := searchKeys(n, key)
	if pos < n.n && n.keys[pos] == key {
		pos++
	}
	promo, newChild, err := t.insert(n.ptrs[pos], depth+1, key, val, opAbs)
	if err != nil {
		return 0, 0, err
	}
	if newChild == 0 {
		return 0, 0, nil
	}
	for i := n.n; i > pos; i-- {
		n.keys[i] = n.keys[i-1]
		n.ptrs[i+1] = n.ptrs[i]
	}
	n.keys[pos] = promo
	n.ptrs[pos+1] = newChild
	n.n++
	if n.n <= bptMaxKeys {
		return 0, 0, t.writeNode(addr, n)
	}
	return t.splitInternal(addr, n)
}

// searchKeys returns the first index with keys[i] >= key.
func searchKeys(n *bptNodeT, key uint64) int {
	lo, hi := 0, n.n
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// splitLeaf splits an overfull (n = maxKeys+1 logical) leaf. The caller
// has already placed the extra entry; n.n == bptMaxKeys+1 is represented
// by n.n and the arrays holding one overflow in their last slot — to keep
// the fixed layout, the split runs on the in-memory image before any
// write happens.
func (t *BPTree) splitLeaf(addr uint64, n *bptNodeT) (uint64, uint64, error) {
	mid := n.n / 2
	right := &bptNodeT{isLeaf: true, next: n.next}
	right.n = n.n - mid
	for i := 0; i < right.n; i++ {
		right.keys[i] = n.keys[mid+i]
		right.ptrs[i] = n.ptrs[mid+i]
	}
	rAddr, err := t.h.Alloc(bptNode)
	if err != nil {
		return 0, 0, err
	}
	n.n = mid
	n.next = rAddr
	if err := t.writeNode(rAddr, right); err != nil {
		return 0, 0, err
	}
	if err := t.writeNode(addr, n); err != nil {
		return 0, 0, err
	}
	return right.keys[0], rAddr, nil
}

func (t *BPTree) splitInternal(addr uint64, n *bptNodeT) (uint64, uint64, error) {
	mid := n.n / 2
	promo := n.keys[mid]
	right := &bptNodeT{}
	right.n = n.n - mid - 1
	for i := 0; i < right.n; i++ {
		right.keys[i] = n.keys[mid+1+i]
	}
	for i := 0; i <= right.n; i++ {
		right.ptrs[i] = n.ptrs[mid+1+i]
	}
	rAddr, err := t.h.Alloc(bptNode)
	if err != nil {
		return 0, 0, err
	}
	n.n = mid
	if err := t.writeNode(rAddr, right); err != nil {
		return 0, 0, err
	}
	if err := t.writeNode(addr, n); err != nil {
		return 0, 0, err
	}
	return promo, rAddr, nil
}

// Get looks up a key under the retry seqlock.
func (t *BPTree) Get(key uint64) ([]byte, bool, error) {
	t.h.Conn().Frontend().ChargeOp()
	var out []byte
	var found bool
	err := readRetry(t.h, func() error {
		out, found = nil, false
		root, err := t.h.ReadRoot()
		if err != nil {
			return err
		}
		addr := root
		depth := 0
		for {
			n, err := t.readNode(addr, depth)
			if err != nil {
				return err
			}
			pos := searchKeys(n, key)
			if n.isLeaf {
				if pos < n.n && n.keys[pos] == key {
					v, err := t.readBlob(n.ptrs[pos], t.pol.cacheable(depth+1))
					if err != nil {
						return err
					}
					out, found = v, true
				}
				return nil
			}
			if pos < n.n && n.keys[pos] == key {
				pos++
			}
			addr = n.ptrs[pos]
			depth++
		}
	})
	t.pol.observe(t.h.Conn().Frontend().Stats())
	return out, found, err
}

// Scan returns up to limit key/value pairs with key >= start, walking the
// leaf chain (range queries, used by the TATP application).
func (t *BPTree) Scan(start uint64, limit int) ([]uint64, [][]byte, error) {
	t.h.Conn().Frontend().ChargeOp()
	var keys []uint64
	var vals [][]byte
	err := readRetry(t.h, func() error {
		keys, vals = nil, nil
		root, err := t.h.ReadRoot()
		if err != nil {
			return err
		}
		addr := root
		depth := 0
		var leaf *bptNodeT
		for {
			n, err := t.readNode(addr, depth)
			if err != nil {
				return err
			}
			if n.isLeaf {
				leaf = n
				break
			}
			pos := searchKeys(n, start)
			if pos < n.n && n.keys[pos] == start {
				pos++
			}
			addr = n.ptrs[pos]
			depth++
		}
		for leaf != nil && len(keys) < limit {
			// Gather the leaf's qualifying blob pointers and post them as
			// one multi-get: a range scan's value fetches are independent
			// reads, so the whole leaf costs one doorbell-group round trip
			// per queue-depth window instead of one RTT per value.
			var leafKeys []uint64
			var blobAddrs []uint64
			for i := 0; i < leaf.n && len(keys)+len(leafKeys) < limit; i++ {
				if leaf.keys[i] < start {
					continue
				}
				leafKeys = append(leafKeys, leaf.keys[i])
				blobAddrs = append(blobAddrs, leaf.ptrs[i])
			}
			if len(blobAddrs) > 0 {
				bufs, err := t.h.ReadMulti(blobAddrs, t.cap+4, false)
				if err != nil {
					return err
				}
				for j, buf := range bufs {
					v, err := t.decodeBlob(buf)
					if err != nil {
						return err
					}
					keys = append(keys, leafKeys[j])
					vals = append(vals, v)
				}
			}
			if leaf.next == 0 {
				break
			}
			nn, err := t.readNode(leaf.next, 99)
			if err != nil {
				return err
			}
			leaf = nn
		}
		return nil
	})
	return keys, vals, err
}

// VectorPut applies a sorted batch: consecutive keys share descent path
// nodes through the cache and overlay, and their memory logs coalesce
// into one transaction (§8.3's vector operation applied to the B+Tree).
func (t *BPTree) VectorPut(keys []uint64, vals [][]byte) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("ds: vector put length mismatch")
	}
	if err := t.w.begin(); err != nil {
		return err
	}
	if _, err := t.h.OpLog(OpPutMany, encodePutMany(keys, vals)); err != nil {
		return err
	}
	order := sortedOrder(keys)
	for _, i := range order {
		if err := t.put(keys[i], vals[i], 0); err != nil {
			return err
		}
	}
	t.pol.observe(t.h.Conn().Frontend().Stats())
	return t.w.end()
}

// Flush flushes the batch buffers.
func (t *BPTree) Flush() error { return t.h.Flush() }

// Drain flushes and waits for replay.
func (t *BPTree) Drain() error {
	if err := t.h.Flush(); err != nil {
		return err
	}
	return t.h.Drain()
}

// Close drains and releases the writer lock.
func (t *BPTree) Close() error {
	if !t.writer {
		return nil
	}
	if err := t.Drain(); err != nil {
		return err
	}
	return t.h.WriterUnlock()
}

// ReplayOp re-executes one pending op-log record.
func (t *BPTree) ReplayOp(rec logrec.OpRecord) error {
	switch rec.OpType &^ logrec.OpTxFlag {
	case OpPut:
		key, val, err := blobParamsSplit(rec.Params)
		if err != nil {
			return err
		}
		if err := t.put(key, val, 0); err != nil {
			return err
		}
		return t.h.EndOp()
	case OpPutMany:
		keys, vals, err := decodePutMany(rec.Params)
		if err != nil {
			return err
		}
		for i := range keys {
			if err := t.put(keys[i], vals[i], 0); err != nil {
				return err
			}
		}
		return t.h.EndOp()
	default:
		return fmt.Errorf("ds: b+tree cannot replay op %d", rec.OpType)
	}
}

// sortedOrder returns indexes of keys in ascending key order.
func sortedOrder(keys []uint64) []int {
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	return idx
}
