package ds

import (
	"encoding/binary"
	"fmt"

	"asymnvm/internal/backend"
	"asymnvm/internal/core"
	"asymnvm/internal/logrec"
)

// Queue is the list-based FIFO of §8.1. The root pointer is the head
// (dequeue side); the tail pointer lives in the aux block's user area as
// its own 8-byte unit. Like the stack, it annuls buffered enqueues with
// dequeues once the persisted part of the queue is empty.
//
// Node layout matches the stack: {next u64, vlen u32, pad, value[cap]}.
type Queue struct {
	h    *core.Handle
	w    writerSession
	cap  int
	head uint64
	tail uint64
	size int
	// buffered enqueues not yet materialized (annihilation, FIFO order).
	buffered [][]byte
}

func (q *Queue) nodeSize() int { return stackHdr + q.cap }

// tailAddr is the global address of the persisted tail-pointer unit.
func (q *Queue) tailAddr() uint64 { return q.h.AuxAddr() + backend.AuxUser }

// CreateQueue registers a new queue.
func CreateQueue(c *core.Conn, name string, opts Options) (*Queue, error) {
	opts.fill()
	h, err := c.Create(name, backend.TypeQueue, opts.Create)
	if err != nil {
		return nil, err
	}
	return newQueue(h, opts)
}

// OpenQueue attaches to an existing queue as the writer.
func OpenQueue(c *core.Conn, name string, opts Options) (*Queue, error) {
	opts.fill()
	h, err := c.Open(name, true)
	if err != nil {
		return nil, err
	}
	q, err := newQueue(h, opts)
	if err != nil {
		return nil, err
	}
	if _, err := ReplayPending(h, q); err != nil {
		return nil, err
	}
	return q, nil
}

func newQueue(h *core.Handle, opts Options) (*Queue, error) {
	q := &Queue{h: h, w: writerSession{h: h, lockPerOp: opts.LockPerOp}, cap: opts.ValueCap}
	h.SetOpGroupCommit(true) // §8.1: op logs buffer for annihilation
	if !opts.LockPerOp {
		if err := h.WriterLock(); err != nil {
			return nil, err
		}
	}
	head, err := h.ReadRoot()
	if err != nil {
		return nil, err
	}
	q.head = head
	tb, err := h.Read(q.tailAddr(), 8, true)
	if err != nil {
		return nil, err
	}
	q.tail = binary.LittleEndian.Uint64(tb)
	// Recount persisted length by walking the list (open is rare).
	for n := q.head; n != 0; {
		buf, err := h.Read(n, q.nodeSize(), false)
		if err != nil {
			return nil, err
		}
		n = binary.LittleEndian.Uint64(buf)
		q.size++
	}
	return q, nil
}

// Handle exposes the underlying framework handle.
func (q *Queue) Handle() *core.Handle { return q.h }

func (q *Queue) batching() bool {
	m := q.h.Conn().Frontend().Mode()
	return m.OpLog && m.Batch > 1
}

func (q *Queue) writeTail(v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	if err := q.h.Write(q.tailAddr(), b[:]); err != nil {
		return err
	}
	q.tail = v
	return nil
}

// Enqueue appends a value at the tail.
func (q *Queue) Enqueue(val []byte) error {
	if len(val) > q.cap {
		return ErrValueTooLarge
	}
	if err := q.w.begin(); err != nil {
		return err
	}
	if _, err := q.h.OpLog(OpPush, kvParams(0, val)); err != nil {
		return err
	}
	if q.batching() {
		q.buffered = append(q.buffered, append([]byte(nil), val...))
		return q.w.end()
	}
	if err := q.materializeEnqueue(val); err != nil {
		return err
	}
	return q.w.end()
}

func (q *Queue) materializeEnqueue(val []byte) error {
	node, err := q.h.Alloc(q.nodeSize())
	if err != nil {
		return err
	}
	buf := make([]byte, q.nodeSize())
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(val)))
	copy(buf[stackHdr:], val)
	if err := q.h.Write(node, buf); err != nil {
		return err
	}
	if q.tail != 0 {
		// Re-link the old tail: read it (hot, cached per §8.1) and
		// rewrite the whole unit with its next pointer set.
		old, err := q.h.Read(q.tail, q.nodeSize(), true)
		if err != nil {
			return err
		}
		relinked := append([]byte(nil), old...)
		binary.LittleEndian.PutUint64(relinked, node)
		if err := q.h.Write(q.tail, relinked); err != nil {
			return err
		}
	}
	if q.head == 0 {
		if err := q.h.WriteRoot(node); err != nil {
			return err
		}
		q.head = node
	}
	if err := q.writeTail(node); err != nil {
		return err
	}
	q.size++
	return nil
}

// Dequeue removes and returns the head value; ok is false on empty.
func (q *Queue) Dequeue() ([]byte, bool, error) {
	if err := q.w.begin(); err != nil {
		return nil, false, err
	}
	if _, err := q.h.OpLog(OpPop, nil); err != nil {
		return nil, false, err
	}
	if q.head == 0 {
		// Persisted part empty: annul the oldest buffered enqueue.
		if len(q.buffered) > 0 {
			val := q.buffered[0]
			q.buffered = q.buffered[1:]
			q.h.Conn().Frontend().Stats().OpsAnnulled.Add(2)
			return val, true, q.w.end()
		}
		return nil, false, q.w.end()
	}
	buf, err := q.h.Read(q.head, q.nodeSize(), true)
	if err != nil {
		return nil, false, err
	}
	next := binary.LittleEndian.Uint64(buf)
	vlen := binary.LittleEndian.Uint32(buf[8:])
	if int(vlen) > q.cap {
		return nil, false, fmt.Errorf("ds: corrupt queue node (vlen=%d)", vlen)
	}
	val := append([]byte(nil), buf[stackHdr:stackHdr+int(vlen)]...)
	if err := q.h.WriteRoot(next); err != nil {
		return nil, false, err
	}
	old := q.head
	q.head = next
	if q.head == 0 {
		if err := q.writeTail(0); err != nil {
			return nil, false, err
		}
	}
	q.size--
	q.h.DelayedFree(old, q.nodeSize())
	return val, true, q.w.end()
}

// Len reports the writer-visible element count.
func (q *Queue) Len() int { return q.size + len(q.buffered) }

// Flush materializes buffered enqueues and flushes the batch.
func (q *Queue) Flush() error {
	for _, val := range q.buffered {
		if err := q.materializeEnqueue(val); err != nil {
			return err
		}
	}
	q.buffered = nil
	return q.h.Flush()
}

// Drain flushes and waits for replay.
func (q *Queue) Drain() error {
	if err := q.Flush(); err != nil {
		return err
	}
	return q.h.Drain()
}

// Close drains and releases the writer lock.
func (q *Queue) Close() error {
	if err := q.Drain(); err != nil {
		return err
	}
	return q.h.WriterUnlock()
}

// ReplayOp re-executes one pending op-log record.
func (q *Queue) ReplayOp(rec logrec.OpRecord) error {
	switch rec.OpType &^ logrec.OpTxFlag {
	case OpPush:
		_, val, err := splitKV(rec.Params)
		if err != nil {
			return err
		}
		if err := q.materializeEnqueue(val); err != nil {
			return err
		}
		return q.h.EndOp()
	case OpPop:
		if q.head == 0 {
			return nil
		}
		buf, err := q.h.Read(q.head, q.nodeSize(), false)
		if err != nil {
			return err
		}
		next := binary.LittleEndian.Uint64(buf)
		if err := q.h.WriteRoot(next); err != nil {
			return err
		}
		q.head = next
		q.size--
		if q.head == 0 {
			if err := q.writeTail(0); err != nil {
				return err
			}
		}
		return q.h.EndOp()
	default:
		return fmt.Errorf("ds: queue cannot replay op %d", rec.OpType)
	}
}
