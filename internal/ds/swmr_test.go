package ds

import (
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"asymnvm/internal/core"
)

// TestSWMRConsistency runs one writer and several concurrent readers on
// the same structure. Readers must only ever observe values the writer
// actually wrote (no torn or mixed states), for both the seqlock-based
// B+Tree and the lock-free multi-version tree.
func TestSWMRConsistency(t *testing.T) {
	cases := []struct {
		name string
		mk   func(c *core.Conn) (KV, error)
		op   func(c *core.Conn) (KV, error)
	}{
		{"bptree",
			func(c *core.Conn) (KV, error) { return CreateBPTree(c, "swmr-bpt", Options{Create: testCreate}) },
			func(c *core.Conn) (KV, error) { return OpenBPTree(c, "swmr-bpt", false, Options{Create: testCreate}) }},
		{"mvbst",
			func(c *core.Conn) (KV, error) { return CreateMVBST(c, "swmr-mv", Options{Create: testCreate}) },
			func(c *core.Conn) (KV, error) { return OpenMVBST(c, "swmr-mv", false, Options{Create: testCreate}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t)
			wc := r.conn(1, core.ModeRCB(2<<20, 8))
			kv, err := tc.mk(wc)
			if err != nil {
				t.Fatal(err)
			}
			// Values encode (key, version); readers check key match and
			// that the version is one the writer could have produced.
			const keys = 16
			mkVal := func(k, ver uint64) []byte {
				b := make([]byte, 16)
				binary.LittleEndian.PutUint64(b, k)
				binary.LittleEndian.PutUint64(b[8:], ver)
				return b
			}
			for k := uint64(1); k <= keys; k++ {
				if err := kv.Put(k, mkVal(k, 0)); err != nil {
					t.Fatal(err)
				}
			}
			type drainer interface{ Drain() error }
			if err := kv.(drainer).Drain(); err != nil {
				t.Fatal(err)
			}

			var stop atomic.Bool
			var wg sync.WaitGroup
			errs := make(chan error, 4)
			var maxVer atomic.Uint64
			for i := 0; i < 3; i++ {
				wg.Add(1)
				go func(id uint16) {
					defer wg.Done()
					rc := r.conn(id, core.ModeRC(2<<20))
					rd, err := tc.op(rc)
					if err != nil {
						errs <- err
						return
					}
					for !stop.Load() {
						for k := uint64(1); k <= keys; k++ {
							v, ok, err := rd.Get(k)
							if err != nil {
								errs <- err
								return
							}
							if !ok {
								errs <- errStr("key vanished")
								return
							}
							if len(v) != 16 || binary.LittleEndian.Uint64(v) != k {
								errs <- errStr("torn or mismatched value")
								return
							}
							if binary.LittleEndian.Uint64(v[8:]) > maxVer.Load()+1 {
								errs <- errStr("version from the future")
								return
							}
						}
						runtime.Gosched()
					}
				}(uint16(2 + i))
			}
			for ver := uint64(1); ver <= 150; ver++ {
				maxVer.Store(ver)
				for k := uint64(1); k <= keys; k++ {
					if err := kv.Put(k, mkVal(k, ver)); err != nil {
						t.Fatal(err)
					}
				}
				runtime.Gosched()
			}
			if err := kv.Flush(); err != nil {
				t.Fatal(err)
			}
			stop.Store(true)
			wg.Wait()
			select {
			case err := <-errs:
				t.Fatal(err)
			default:
			}
		})
	}
}

type errStr string

func (e errStr) Error() string { return string(e) }
