// Package ds implements the eight persistent data structures of the
// paper's evaluation on top of the AsymNVM front-end framework: Stack,
// Queue, HashTable, SkipList, binary search tree (BST), B+Tree, and the
// multi-version MV-BST and MV-B+Tree — plus the structure-specific
// optimizations of §8 (operation annihilation for stack/queue, hot-item
// caching for the hash table, level-biased caching and vector operations
// for trees, and key-hash partitioning across back-ends).
//
// Every structure follows the same discipline the core layer requires:
// NVM is read and written in fixed "units" (a whole node, a root slot, an
// 8-byte metadata word), all mutations flow through the operation/memory
// logs in the optimized modes, and each completed operation calls EndOp so
// batching and recovery see operation boundaries.
package ds

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"

	"asymnvm/internal/core"
	"asymnvm/internal/logrec"
	"asymnvm/internal/trace"
)

// Operation-log opcodes shared by the structures. Parameters are
// little-endian key bytes followed by the raw value.
const (
	OpPut     uint8 = 1 // {key, value}
	OpDelete  uint8 = 2 // {key}
	OpPush    uint8 = 3 // {value}   (stack push / queue enqueue)
	OpPop     uint8 = 4 // {}        (stack pop / queue dequeue)
	OpPutMany uint8 = 5 // vector write: {count, key..., value...}
)

// ErrValueTooLarge is returned when a value exceeds the structure's
// configured inline capacity (larger values belong in the blob variants
// of the applications layer).
var ErrValueTooLarge = errors.New("ds: value exceeds inline capacity")

// Options configures a structure instance.
type Options struct {
	// ValueCap is the inline value capacity of a node. Defaults to 64
	// bytes, the value size of the paper's microbenchmarks.
	ValueCap int
	// Buckets is the hash table's bucket count (default 1<<16).
	Buckets int
	// Create sizes the structure's log areas.
	Create core.CreateOptions
	// LockPerOp acquires and releases the exclusive writer lock around
	// every operation instead of holding it for the handle's lifetime.
	// The fine-grained variant is what §6.1 describes; the coarse default
	// is what makes batched writers cheap.
	LockPerOp bool
	// FlatCache disables the adaptive tree-level caching hint of §8.3 and
	// caches every node through the plain replacement policy ("native
	// LRU" in the paper's Figure 7 discussion) — the ablation baseline.
	FlatCache bool
}

func (o *Options) fill() {
	if o.ValueCap == 0 {
		o.ValueCap = 64
	}
	if o.Buckets == 0 {
		o.Buckets = 1 << 16
	}
}

// KV is the common key-value surface of the index structures.
type KV interface {
	Put(key uint64, val []byte) error
	Get(key uint64) ([]byte, bool, error)
	Flush() error
}

// kvParams encodes {key, value} op-log parameters.
func kvParams(key uint64, val []byte) []byte {
	p := make([]byte, 8+len(val))
	binary.LittleEndian.PutUint64(p, key)
	copy(p[8:], val)
	return p
}

// splitKV decodes {key, value} op-log parameters.
func splitKV(p []byte) (uint64, []byte, error) {
	if len(p) < 8 {
		return 0, nil, errors.New("ds: short kv params")
	}
	return binary.LittleEndian.Uint64(p), p[8:], nil
}

// valSrcOff is the offset of the value inside kvParams, used by
// WriteFromOp pointer entries.
const valSrcOff = 8

// writerSession brackets one write operation: it takes the per-op lock
// when configured, and always marks the operation boundary.
type writerSession struct {
	h         *core.Handle
	lockPerOp bool
}

func (w writerSession) begin() error {
	fe := w.h.Conn().Frontend()
	fe.Tracer().Begin(trace.KindOp)
	fe.ChargeOp()
	if w.lockPerOp {
		return w.h.WriterLock()
	}
	return nil
}

func (w writerSession) end() error {
	defer w.h.Conn().Frontend().Tracer().End()
	if err := w.h.EndOp(); err != nil {
		return err
	}
	if w.lockPerOp {
		return w.h.WriterUnlock()
	}
	return nil
}

// cancel closes the operation span without marking the operation
// boundary — the error path of operations that can fail retryably (the
// multi-writer MV root conflict), keeping the tracer's span stack
// balanced across a re-execution.
func (w writerSession) cancel() {
	w.h.Conn().Frontend().Tracer().End()
}

// readRetry runs body under the optimistic reader lock until it validates
// (Algorithm 2's retry loop). Multi-version handles validate trivially.
// The structure's single writer needs no lock at all: its overlay patches
// every not-yet-replayed write over whatever the replayer has applied, so
// its reads are consistent by construction (SWMR).
func readRetry(h *core.Handle, body func() error) error {
	if h.IsWriter() {
		return body()
	}
	for {
		if err := h.ReaderLock(); err != nil {
			return err
		}
		if err := body(); err != nil {
			return err
		}
		// A real read section spans several fabric round trips; on a
		// single-core host, yielding here gives concurrent writers and
		// the replayer the interleaving they would have on real nodes.
		runtime.Gosched()
		ok, err := h.ReaderValidate()
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
	}
}

// Replayer re-executes archived or pending op-log records through normal
// structure operations during recovery (§7.2 Cases 2.c/3.c and archive
// rebuild). Each structure implements it on its writer type.
type Replayer interface {
	ReplayOp(rec logrec.OpRecord) error
}

// ReplayPending drains a writer handle's uncovered op-log records through
// r — the front-end half of Case 2.c: operations that were acknowledged
// (their op log persisted) but whose memory logs never made it.
func ReplayPending(h *core.Handle, r Replayer) (int, error) {
	ops, err := h.PendingOps()
	if err != nil {
		return 0, err
	}
	for i, rec := range ops {
		if err := r.ReplayOp(rec); err != nil {
			return i, fmt.Errorf("ds: replaying pending op %d: %w", i, err)
		}
	}
	return len(ops), nil
}
