package ds

import (
	"encoding/binary"
	"errors"
	"fmt"

	"asymnvm/internal/arena"
	"asymnvm/internal/backend"
	"asymnvm/internal/core"
	"asymnvm/internal/logrec"
	"asymnvm/internal/trace"
)

// Elastic shard migration. A partition is handed off to another back-end
// while the writer keeps committing:
//
//  1. Begin          — persist the in-flight migration word
//     (phase=streaming) and create the destination area under a fresh
//     child-name generation.
//  2. StreamSnapshot — flush and drain the source, then re-execute its
//     full operation history on the destination through the migration
//     stream framing (logrec.MigRecord). When the snapshot lands, the
//     double-log window opens: every subsequent committed write goes to
//     both source and destination (the live log suffix).
//  3. Cutover        — drain both sides, then flip the partition's owner
//     word and bump the map version in ONE logged meta write
//     (phase=reclaim). Applying that write bumps the meta slot's seqlock
//     SN — the epoch fence readers observe; their next routed operation
//     re-reads the map and re-opens the moved partition.
//  4. Finish         — clear the migration word. The old area is left in
//     place for lazy reclaim: the naming table has no delete, and an
//     in-flight reader that raced past the fence may still be walking it
//     (the same rule that keeps an old root valid across RedirectRoot).
//
// Raw byte copy between back-ends is unsound — GlobalAddrs embed the
// owning node id in their top bits — so migration re-executes operation
// semantics, never bytes.
//
// Crash outcomes (pinned by the crash matrix): death anywhere before
// Cutover's meta write leaves the source the sole durable owner and the
// destination generation abandoned garbage (a retry picks the next
// generation, so it never collides with the orphan); death after the
// meta write — even before Finish — leaves the flipped map durable, so
// recovery lands on exactly the destination. There is no window in which
// both or neither own the partition.

// Versioned mapping-table layout in the meta entry's aux user area
// (offsets relative to backend.AuxUser):
//
//	[0:8)    kind
//	[8:16)   parts
//	[16:24)  version    (0 = legacy static map: no fence, default owners)
//	[24:32)  migration word (see migWord; 0 = none in flight)
//	[32:...) owner words, one u16 per partition
//
// An owner word of 0 means the default placement conns[i%len(conns)]
// under the generation-0 child name; otherwise the low byte holds the
// owning connection index + 1 and the high byte the child-name
// generation. Legacy 16-byte maps read back with version 0 because the
// aux user area is zero-initialised.
const (
	mapVersionOff = 16
	mapMigOff     = 24
	mapOwnersOff  = 32

	// MaxElasticParts caps versioned maps: the owner words must fit the
	// meta aux user area behind the fixed header.
	MaxElasticParts = (backend.AuxSize - backend.AuxUser - mapOwnersOff) / 2
)

// Migration phases persisted in the migration word.
const (
	migPhaseStream  = 1 // destination materialising: snapshot + double log
	migPhaseReclaim = 2 // map flipped; old area awaiting lazy reclaim
)

// migWord packs the in-flight migration descriptor: partition, phase,
// destination child-name generation and destination connection index.
func migWord(pi int, phase, gen, dst uint8) uint64 {
	return uint64(pi+1) | uint64(phase)<<16 | uint64(gen)<<24 | uint64(dst+1)<<32
}

// splitMigWord unpacks migWord. Only call on a nonzero word.
func splitMigWord(w uint64) (pi int, phase, gen, dst uint8) {
	return int(w&0xFFFF) - 1, uint8(w >> 16), uint8(w >> 24), uint8(w>>32) - 1
}

// ownerWord packs a partition owner: connection index and generation.
func ownerWord(conn int, gen uint8) uint16 {
	return uint16(conn+1) | uint16(gen)<<8
}

// ownerOf resolves partition pi's placement from the wire owner words.
func ownerOf(owners []uint16, pi, nconns int) (conn int, gen uint8) {
	if pi < len(owners) && owners[pi] != 0 {
		return int(owners[pi]&0xFF) - 1, uint8(owners[pi] >> 8)
	}
	return pi % nconns, 0
}

// partName names partition pi's naming-table entry. Generation 0 is the
// creation-time "<name>#<i>"; each migration attempt materialises its
// destination under the next generation so a retry after a crashed
// attempt never collides with the abandoned area.
func partName(name string, pi int, gen uint8) string {
	if gen == 0 {
		return fmt.Sprintf("%s#%d", name, pi)
	}
	return fmt.Sprintf("%s#%d.g%d", name, pi, gen)
}

// partMap is the decoded mapping table.
type partMap struct {
	kind    KVKind
	parts   int
	version uint64
	mig     uint64
	owners  []uint16
}

func (pm *partMap) encode() []byte {
	b := make([]byte, mapOwnersOff+2*len(pm.owners))
	binary.LittleEndian.PutUint64(b[0:], uint64(pm.kind))
	binary.LittleEndian.PutUint64(b[8:], uint64(pm.parts))
	binary.LittleEndian.PutUint64(b[mapVersionOff:], pm.version)
	binary.LittleEndian.PutUint64(b[mapMigOff:], pm.mig)
	for i, ow := range pm.owners {
		binary.LittleEndian.PutUint16(b[mapOwnersOff+2*i:], ow)
	}
	return b
}

// readPartMap reads the mapping table from the meta entry. Legacy
// 16-byte maps decode with version 0 and nil owners.
func readPartMap(meta *core.Handle) (partMap, error) {
	var pm partMap
	hdr, err := meta.Read(meta.AuxAddr()+backend.AuxUser, mapOwnersOff, false)
	if err != nil {
		return pm, err
	}
	pm.kind = KVKind(binary.LittleEndian.Uint64(hdr[0:]))
	pm.parts = int(binary.LittleEndian.Uint64(hdr[8:]))
	pm.version = binary.LittleEndian.Uint64(hdr[mapVersionOff:])
	pm.mig = binary.LittleEndian.Uint64(hdr[mapMigOff:])
	if pm.parts <= 0 || pm.parts > 1<<16 {
		return pm, fmt.Errorf("ds: corrupt partition meta (parts=%d)", pm.parts)
	}
	if pm.version == 0 {
		return pm, nil
	}
	if pm.parts > MaxElasticParts {
		return pm, fmt.Errorf("ds: versioned map with %d parts exceeds the %d-part aux budget", pm.parts, MaxElasticParts)
	}
	ob, err := meta.Read(meta.AuxAddr()+backend.AuxUser+mapOwnersOff, 2*pm.parts, false)
	if err != nil {
		return pm, err
	}
	pm.owners = make([]uint16, pm.parts)
	for i := range pm.owners {
		pm.owners[i] = binary.LittleEndian.Uint16(ob[2*i:])
	}
	return pm, nil
}

// curMap snapshots the writer's authoritative in-memory map.
func (p *Partitioned) curMap() partMap {
	return partMap{kind: p.kind, parts: len(p.parts), version: p.version, mig: p.migw, owners: p.owners}
}

// writeMap persists pm through the meta entry's log path and makes it
// visible: Flush commits the record, Drain waits until the back-end
// replayer has applied it — the apply bumps the meta slot SN readers
// fence on, so after writeMap returns the flip is observable.
func (p *Partitioned) writeMap(pm *partMap) error {
	if err := p.meta.Write(p.meta.AuxAddr()+backend.AuxUser, pm.encode()); err != nil {
		return err
	}
	if err := p.meta.Flush(); err != nil {
		return err
	}
	return p.meta.Drain()
}

// fence guards a routed operation on a versioned map. Readers compare
// the meta slot's seqlock SN against the value cached at the last map
// read; a cutover's meta apply bumps it, and the reader re-reads the map
// and re-opens moved partitions before routing. The writer skips the
// check: under SWMR it is the party performing migrations, so its view
// is authoritative. Staleness is bounded to the single operation already
// in flight at the flip — the old area stays valid for a reader that
// raced past the check, exactly the root-redirect rule.
func (p *Partitioned) fence() error {
	if p.version == 0 || p.writer {
		return nil
	}
	sn, err := p.meta.Conn().SlotSN(p.meta.Slot())
	if err != nil {
		return err
	}
	if sn == p.metaSN {
		return nil
	}
	return p.refreshMap()
}

// refreshMap re-reads the mapping table under the meta seqlock and
// re-opens any partition whose owner changed (the retry-on-moved path).
// A destination outside the attached connection set surfaces
// core.ErrMoved: this front-end cannot reach the new owner and the
// caller must re-attach (serve maps it to StatusMoved with a
// retry-after hint).
func (p *Partitioned) refreshMap() error {
	for attempt := 0; attempt < 64; attempt++ {
		sn1, err := p.meta.Conn().SlotSN(p.meta.Slot())
		if err != nil {
			return err
		}
		if sn1&1 != 0 {
			continue // replayer mid-apply on the meta slot
		}
		pm, err := readPartMap(p.meta)
		if err != nil {
			return err
		}
		sn2, err := p.meta.Conn().SlotSN(p.meta.Slot())
		if err != nil {
			return err
		}
		if sn2 != sn1 {
			continue
		}
		if pm.parts != len(p.parts) {
			return fmt.Errorf("ds: mapping table part count changed (%d -> %d)", len(p.parts), pm.parts)
		}
		for pi := range p.parts {
			nc, ng := ownerOf(pm.owners, pi, len(p.conns))
			oc, og := ownerOf(p.owners, pi, len(p.conns))
			if nc == oc && ng == og {
				continue
			}
			if nc >= len(p.conns) {
				return fmt.Errorf("ds: partition %d re-homed to connection %d, only %d attached: %w",
					pi, nc, len(p.conns), core.ErrMoved)
			}
			part, err := openKV(p.conns[nc], p.kind, partName(p.name, pi, ng), false, p.opts)
			if err != nil {
				return err
			}
			p.parts[pi] = part
		}
		p.version, p.owners, p.metaSN = pm.version, pm.owners, sn1
		return nil
	}
	return fmt.Errorf("ds: mapping table kept changing under refresh: %w", core.ErrMoved)
}

// CreateElastic creates a partitioned structure with a versioned mapping
// table (version 1, default placement), so readers fence from birth and
// follow cutovers. Structures created with CreatePartitioned keep the
// legacy static map and pay no fence verb; they can still migrate, but
// only readers attached after the upgrade observe the flip.
func CreateElastic(conns []*core.Conn, kind KVKind, name string, parts int, opts Options) (*Partitioned, error) {
	if parts > MaxElasticParts {
		return nil, fmt.Errorf("ds: %d parts exceed the %d-part versioned-map budget", parts, MaxElasticParts)
	}
	p, err := CreatePartitioned(conns, kind, name, parts, opts)
	if err != nil {
		return nil, err
	}
	p.version = 1
	p.owners = make([]uint16, parts)
	pm := p.curMap()
	if err := p.writeMap(&pm); err != nil {
		return nil, err
	}
	return p, nil
}

// Version reports the current mapping-table version (0 = legacy static).
func (p *Partitioned) Version() uint64 { return p.version }

// Owner reports which connection index currently owns partition pi —
// the placement rebalancing planners compare against the ring's
// assignment.
func (p *Partitioned) Owner(pi int) int {
	ci, _ := ownerOf(p.owners, pi, len(p.conns))
	return ci
}

// Migrating reports the partition currently being handed off, or -1.
func (p *Partitioned) Migrating() int {
	if p.migw == 0 {
		return -1
	}
	pi, _, _, _ := splitMigWord(p.migw)
	return pi
}

// ResolveMigration settles a migration word left behind by a crashed
// writer — the open-time recovery step, run on a fresh writer before
// serving. A streaming-phase word aborts: the map never flipped, so the
// source is the sole durable owner and the destination generation is
// orphaned garbage (a retry's generation probe skips past it). A
// reclaim-phase word finishes: the flip was durable, recovery already
// landed on the destination, and only the bookkeeping word remained.
// Either way the partition ends with exactly one owner. Returns -1 for
// an aborted stream, +1 for a completed flip, 0 when nothing was
// pending.
func (p *Partitioned) ResolveMigration() (int, error) {
	if p.migw == 0 {
		return 0, nil
	}
	if !p.writer {
		return 0, fmt.Errorf("ds: only the writer resolves migrations")
	}
	if !p.meta.IsWriter() {
		meta, err := p.conns[0].Open(p.name, true)
		if err != nil {
			return 0, err
		}
		p.meta = meta
	}
	_, phase, _, _ := splitMigWord(p.migw)
	p.migw = 0
	pm := p.curMap()
	if err := p.writeMap(&pm); err != nil {
		return 0, err
	}
	if phase == migPhaseStream {
		return -1, nil
	}
	return 1, nil
}

// Migration is an in-flight handoff of one partition to a new back-end.
type Migration struct {
	p     *Partitioned
	pi    int
	gen   uint8
	dstCi int
	dst   KV
	seq   uint64 // migration stream cursor
	epoch uint64 // map version the cutover will install
}

// BeginMigration starts handing partition pi off to the attached
// connection dst: it persists the migration word and creates the
// destination area under a fresh generation name. Stream the snapshot
// next; writes keep routing to the source until Cutover.
func (p *Partitioned) BeginMigration(pi int, dst *core.Conn) (*Migration, error) {
	if !p.writer {
		return nil, fmt.Errorf("ds: only the writer migrates partitions")
	}
	if p.migw != 0 {
		cur, _, _, _ := splitMigWord(p.migw)
		return nil, fmt.Errorf("ds: partition %d already migrating", cur)
	}
	if pi < 0 || pi >= len(p.parts) {
		return nil, fmt.Errorf("ds: bad partition %d", pi)
	}
	if len(p.parts) > MaxElasticParts {
		return nil, fmt.Errorf("ds: %d parts exceed the %d-part versioned-map budget", len(p.parts), MaxElasticParts)
	}
	dstCi := -1
	for i, c := range p.conns {
		if c == dst {
			dstCi = i
			break
		}
	}
	if dstCi < 0 {
		return nil, fmt.Errorf("ds: destination connection not attached to this structure")
	}
	if !p.meta.IsWriter() {
		// OpenPartitioned opens the meta entry read-only; migration needs
		// the log path to persist map flips.
		meta, err := p.conns[0].Open(p.name, true)
		if err != nil {
			return nil, err
		}
		p.meta = meta
	}
	if p.owners == nil {
		p.owners = make([]uint16, len(p.parts))
	}
	if p.version == 0 {
		p.version = 1 // upgrade a legacy static map in place
	}
	_, gen := ownerOf(p.owners, pi, len(p.conns))
	if p.migw != 0 {
		if _, _, mg, _ := splitMigWord(p.migw); mg > gen {
			gen = mg
		}
	}
	// Probe for a free generation: an orphaned destination from a crashed
	// earlier attempt still holds its name (the naming table has no
	// delete), so creation collisions just advance the generation.
	var dstKV KV
	for {
		if gen == 0xFF {
			return nil, fmt.Errorf("ds: partition %d exhausted migration generations", pi)
		}
		gen++
		var err error
		dstKV, err = createKV(dst, p.kind, partName(p.name, pi, gen), p.opts)
		if err == nil {
			break
		}
		if !errors.Is(err, core.ErrExists) {
			return nil, err
		}
	}
	p.migw = migWord(pi, migPhaseStream, gen, uint8(dstCi))
	pm := p.curMap()
	if err := p.writeMap(&pm); err != nil {
		p.migw = 0
		return nil, err
	}
	fe := p.meta.Conn().Frontend()
	fe.Stats().MigrationsActive.Add(1)
	return &Migration{p: p, pi: pi, gen: gen, dstCi: dstCi, dst: dstKV, epoch: p.version + 1}, nil
}

// Dst exposes the destination instance (tests inspect it directly).
func (m *Migration) Dst() KV { return m.dst }

// StreamSnapshot re-executes the source partition's full operation
// history on the destination, then opens the double-log window: from
// return onward every committed write to this partition goes to both
// sides, so the snapshot plus the live suffix is complete at cutover.
// Each history record travels through the migration stream framing —
// encoded to a MigRecord, run back through the fuzz-hardened decoder,
// then replayed — so the in-process path exercises byte-identical
// framing to a networked stream.
func (m *Migration) StreamSnapshot() (int, error) {
	p := m.p
	src := p.PartHandle(m.pi)
	if src == nil {
		return 0, fmt.Errorf("ds: partition %d kind exposes no handle to stream", m.pi)
	}
	rep, ok := m.dst.(Replayer)
	if !ok {
		return 0, fmt.Errorf("ds: destination %T cannot replay the migration stream", m.dst)
	}
	if err := p.parts[m.pi].Flush(); err != nil {
		return 0, err
	}
	if err := src.Drain(); err != nil {
		return 0, err
	}
	ops, err := src.HistoryOps()
	if err != nil {
		return 0, err
	}
	n, err := streamOps(ops, src.Slot(), m.epoch, &m.seq, logrec.MigSnap, rep)
	if err != nil {
		return n, err
	}
	if err := m.dst.Flush(); err != nil {
		return n, err
	}
	// The single writer drives both migration and commits, so no write
	// can slip in between the history read above and this point: the
	// double-log window opens exactly at the snapshot boundary and every
	// operation reaches the destination exactly once — which keeps even
	// non-idempotent replays (counter adds) correct.
	p.migPart, p.migDst = m.pi, m.dst
	return n, nil
}

// Cutover flips ownership of the partition to the destination: both
// sides are committed and applied, the cutover marker is framed through
// the stream codec, and the owner word + version land in one logged meta
// write whose apply is the fence readers trip on. After Cutover the
// writer itself routes to the destination.
func (m *Migration) Cutover() error {
	p := m.p
	if p.migDst != m.dst {
		return fmt.Errorf("ds: cutover before the snapshot stream completed")
	}
	if err := p.parts[m.pi].Flush(); err != nil {
		return err
	}
	if src := p.PartHandle(m.pi); src != nil {
		if err := src.Drain(); err != nil {
			return err
		}
	}
	if err := m.dst.Flush(); err != nil {
		return err
	}
	if dh, err := kvHandle(m.dst); err == nil {
		if err := dh.Drain(); err != nil {
			return err
		}
	}
	// Seal the stream: a networked destination acks this marker before
	// the flip. The in-process path still frames and decodes it so the
	// wire discipline stays exercised.
	seal := logrec.MigRecord{Kind: logrec.MigCutover, Slot: p.meta.Slot(), Seq: m.seq, Epoch: m.epoch}
	if _, _, err := logrec.DecodeMig(seal.Encode(), m.seq); err != nil {
		return fmt.Errorf("ds: cutover marker self-check: %w", err)
	}
	m.seq++
	p.owners[m.pi] = ownerWord(m.dstCi, m.gen)
	p.version++
	p.migw = migWord(m.pi, migPhaseReclaim, m.gen, uint8(m.dstCi))
	pm := p.curMap()
	if err := p.writeMap(&pm); err != nil {
		return err
	}
	p.parts[m.pi] = m.dst
	p.migPart, p.migDst = -1, nil
	fe := p.meta.Conn().Frontend()
	fe.Stats().CutoverEpochs.Add(1)
	fe.Tracer().Event(trace.KindCutover, p.version)
	return nil
}

// Finish clears the migration word after cutover. The superseded source
// area stays in the naming table for lazy reclaim — an in-flight reader
// that raced past the fence may still be walking it.
func (m *Migration) Finish() error {
	p := m.p
	if p.migw == 0 {
		return nil
	}
	p.migw = 0
	pm := p.curMap()
	if err := p.writeMap(&pm); err != nil {
		return err
	}
	p.meta.Conn().Frontend().Stats().MigrationsActive.Add(-1)
	return nil
}

// Abort abandons a handoff before cutover: double-logging stops, the
// migration word clears, and the destination generation is left as
// garbage (a later retry picks a fresh generation). Aborting after
// cutover is not possible — the flip is one durable meta write.
func (m *Migration) Abort() error {
	p := m.p
	if p.migw == 0 {
		return nil
	}
	if _, phase, _, _ := splitMigWord(p.migw); phase == migPhaseReclaim {
		return fmt.Errorf("ds: cannot abort after cutover; Finish instead")
	}
	p.migPart, p.migDst = -1, nil
	p.migw = 0
	pm := p.curMap()
	if err := p.writeMap(&pm); err != nil {
		return err
	}
	p.meta.Conn().Frontend().Stats().MigrationsActive.Add(-1)
	return nil
}

// StripedMigration re-homes an ENTIRE striped structure to another
// back-end. Unlike partition handoff there is no shared mapping table to
// flip — each back-end has its own naming space, so the destination is
// created under the same name over there and the source's meta is
// stamped with a moved-to word at cutover; later opens of the source are
// redirected with core.ErrMoved. Stripe locks are shared between
// front-ends, so the caller must quiesce other writers before Cutover
// (the standard writer-attach discipline) and they re-attach at the new
// home afterwards.
type StripedMigration struct {
	s   *Striped
	dst *Striped
	seq uint64
}

// BeginMigration creates the same-named destination structure on dst.
// Stream the snapshot next; writes keep routing to the source (and,
// after the snapshot lands, to both) until Cutover.
func (s *Striped) BeginMigration(dst *core.Conn) (*StripedMigration, error) {
	if s.moved {
		return nil, fmt.Errorf("ds: striped structure %q: %w", s.name, core.ErrMoved)
	}
	if s.mig != nil {
		return nil, fmt.Errorf("ds: striped structure %q already migrating", s.name)
	}
	if dst.BackendID() == s.conn.BackendID() {
		return nil, fmt.Errorf("ds: striped re-home needs a different back-end")
	}
	if !s.meta.IsWriter() {
		// OpenStriped opens the meta read-only; the cutover stamp needs
		// the log path.
		meta, err := s.conn.Open(s.name, true)
		if err != nil {
			return nil, err
		}
		s.meta = meta
	}
	opts := s.opts
	opts.LockPerOp = false // CreateStriped re-forces it
	d, err := CreateStriped(dst, s.kind, s.name, len(s.stripes), opts)
	if err != nil {
		return nil, err
	}
	s.meta.Conn().Frontend().Stats().MigrationsActive.Add(1)
	return &StripedMigration{s: s, dst: d}, nil
}

// Dst exposes the destination structure; after Cutover it is the live
// instance the coordinating front-end keeps using.
func (m *StripedMigration) Dst() *Striped { return m.dst }

// StreamSnapshot replays every stripe's full history onto its destination
// stripe through the migration stream framing, then opens the double-log
// window. Destination replays run inside a writer-lock bracket, the same
// discipline the shared-lock protocol demands of any stripe writer.
func (m *StripedMigration) StreamSnapshot() (int, error) {
	s := m.s
	total := 0
	for i, h := range s.hs {
		if err := s.stripes[i].Flush(); err != nil {
			return total, err
		}
		if err := h.Drain(); err != nil {
			return total, err
		}
		ops, err := h.HistoryOps()
		if err != nil {
			return total, err
		}
		rep, ok := m.dst.stripes[i].(Replayer)
		if !ok {
			return total, fmt.Errorf("ds: stripe %d destination %T cannot replay", i, m.dst.stripes[i])
		}
		dh := m.dst.hs[i]
		if err := dh.WriterLock(); err != nil {
			return total, err
		}
		n, err := streamOps(ops, h.Slot(), s.version+1, &m.seq, logrec.MigSnap, rep)
		total += n
		if err != nil {
			_ = dh.WriterUnlock()
			return total, err
		}
		if err := m.dst.stripes[i].Flush(); err != nil {
			_ = dh.WriterUnlock()
			return total, err
		}
		// Unlock drains the stripe and persists exact tail hints.
		if err := dh.WriterUnlock(); err != nil {
			return total, err
		}
	}
	s.mig = m.dst
	return total, nil
}

// Cutover drains both sides and stamps the source meta's moved-to word —
// one logged write, after which opens of the source redirect and this
// instance refuses operations with core.ErrMoved. A crash before the
// stamp leaves the source the sole owner; after it, the destination.
func (m *StripedMigration) Cutover() error {
	s := m.s
	if s.mig != m.dst {
		return fmt.Errorf("ds: cutover before the snapshot stream completed")
	}
	for i, h := range s.hs {
		if err := s.stripes[i].Flush(); err != nil {
			return err
		}
		if err := h.Drain(); err != nil {
			return err
		}
	}
	for i, dh := range m.dst.hs {
		if err := m.dst.stripes[i].Flush(); err != nil {
			return err
		}
		if err := dh.Drain(); err != nil {
			return err
		}
	}
	seal := logrec.MigRecord{Kind: logrec.MigCutover, Slot: s.meta.Slot(), Seq: m.seq, Epoch: s.version + 1}
	if _, _, err := logrec.DecodeMig(seal.Encode(), m.seq); err != nil {
		return fmt.Errorf("ds: cutover marker self-check: %w", err)
	}
	m.seq++
	var b [32]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(s.kind))
	binary.LittleEndian.PutUint64(b[8:16], uint64(len(s.stripes)))
	binary.LittleEndian.PutUint64(b[16:24], s.version+1)
	binary.LittleEndian.PutUint64(b[24:32], uint64(m.dst.conn.BackendID())+1)
	if err := s.meta.Write(s.meta.AuxAddr()+backend.AuxUser, b[:]); err != nil {
		return err
	}
	if err := s.meta.Flush(); err != nil {
		return err
	}
	if err := s.meta.Drain(); err != nil {
		return err
	}
	s.version++
	s.moved, s.mig = true, nil
	fe := s.meta.Conn().Frontend()
	fe.Stats().CutoverEpochs.Add(1)
	fe.Tracer().Event(trace.KindCutover, s.version)
	return nil
}

// Finish closes the handoff's accounting. The superseded source areas
// stay behind the moved-to stamp for lazy reclaim.
func (m *StripedMigration) Finish() error {
	m.s.meta.Conn().Frontend().Stats().MigrationsActive.Add(-1)
	return nil
}

// StreamHistory re-executes src's full committed history on dst through
// the migration stream framing — the generic building block partition
// handoff and striped re-home share, exported for re-home tooling and
// the replay-equivalence harness. Returns the op count shipped.
func StreamHistory(src *core.Handle, dst Replayer) (int, error) {
	ops, err := src.HistoryOps()
	if err != nil {
		return 0, err
	}
	var seq uint64
	return streamOps(ops, src.Slot(), 1, &seq, logrec.MigSnap, dst)
}

// streamOps frames each op record as a migration-stream record, runs it
// back through the fuzz-hardened decoder, and re-executes it on dst.
// seq is the dense stream cursor; a gap or replay fails the decode.
//
// Each record is also appended to the destination's own op log before
// re-execution (logged first, so the EndOp inside ReplayOp covers it —
// the same order the public mutators use). Without this the migrated
// materialization would hold only post-cutover records, so a SECOND
// migration of the same partition would stream a truncated history and
// silently drop everything written before the first hop.
func streamOps(ops []logrec.OpRecord, slot uint16, epoch uint64, seq *uint64, kind uint8, dst Replayer) (int, error) {
	var dh *core.Handle
	if hd, ok := dst.(interface{ Handle() *core.Handle }); ok {
		dh = hd.Handle()
	}
	var (
		wire []byte
		pay  []byte
		dec  logrec.MigRecord
		op   logrec.OpRecord
		a    arena.Arena
	)
	for i := range ops {
		pay = ops[i].AppendTo(pay[:0])
		rec := logrec.MigRecord{Kind: kind, Slot: slot, Seq: *seq, Epoch: epoch, Payload: pay}
		wire = rec.AppendTo(wire[:0])
		used, err := logrec.DecodeMigInto(&dec, wire, *seq, &a)
		if err != nil {
			return i, fmt.Errorf("ds: migration stream self-check: %w", err)
		}
		if used != len(wire) {
			return i, fmt.Errorf("ds: migration stream framed %d bytes, decoded %d", len(wire), used)
		}
		if _, err := logrec.DecodeOpInto(&op, dec.Payload, ops[i].Abs, &a); err != nil {
			return i, fmt.Errorf("ds: migration payload: %w", err)
		}
		if dh != nil {
			if _, err := dh.OpLog(op.OpType, op.Params); err != nil {
				return i, err
			}
		}
		if err := dst.ReplayOp(op); err != nil {
			return i, err
		}
		*seq++
		a.Reset()
	}
	return len(ops), nil
}
