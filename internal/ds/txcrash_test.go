package ds

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"asymnvm/internal/backend"
	"asymnvm/internal/core"
	"asymnvm/internal/nvm"
	"asymnvm/internal/rdma"
)

// The cross-shard transaction crash matrix: a two-partition store spans
// two back-ends, with the transaction coordinator co-located with
// partition 0. One cross-shard TxPutMulti is the probe; its write-class
// verbs on one chosen link are enumerated, and at each verb in turn the
// link dies (the dying write torn mid-transfer), the node behind it
// power-fails, and the cell recovers — node restart with a device-scan
// resolver, stale locks broken, presumed-abort consultation through a
// reopened coordinator. The invariant at every point is cross-shard
// atomicity: the surviving state shows the transfer on both partitions
// or on neither, and an aborted durable prepare's log span lands in the
// reclaim ledger (never leaked).
//
// Killing link 0 covers coordinator death — mid-prepare of partition 0,
// between prepare and commit, and mid-commit-record (torn). Killing
// link 1 covers participant death — mid-prepare and after the commit
// record is durable but before the participant sees its decision.

// txCell is the two-node cross-shard cell.
type txCell struct {
	t       *testing.T
	devs    [2]*nvm.Device
	bks     [2]*backend.Backend
	stopped [2]bool
	conns   []*core.Conn
	p       *Partitioned
	tc      *core.TxCoordinator
	kA, kB  uint64 // kA owned by partition 0 (node 0), kB by partition 1 (node 1)
}

var (
	txOldA = []byte("old-balance-A")
	txOldB = []byte("old-balance-B")
	txNewA = []byte("new-balance-A")
	txNewB = []byte("new-balance-B")
)

func newTxCell(t *testing.T) *txCell {
	t.Helper()
	cell := &txCell{t: t}
	fe := core.NewFrontend(core.FrontendOptions{ID: 1, Mode: core.ModeR(), Profile: &zprof})
	for i := 0; i < 2; i++ {
		i := i
		cell.devs[i] = nvm.NewDevice(64 << 20)
		bk, err := backend.New(cell.devs[i], backend.Options{ID: uint16(i), Profile: &zprof})
		if err != nil {
			t.Fatal(err)
		}
		bk.Start()
		cell.bks[i] = bk
		t.Cleanup(func() {
			if !cell.stopped[i] {
				cell.bks[i].Stop()
			}
		})
		c, err := fe.Connect(bk)
		if err != nil {
			t.Fatal(err)
		}
		cell.conns = append(cell.conns, c)
	}
	p, err := CreatePartitioned(cell.conns, KindHashTable, "txm", 2, crashOpts())
	if err != nil {
		t.Fatal(err)
	}
	cell.p = p
	// Pick one key per partition; partition i lives on node i.
	cell.kA, cell.kB = 0, 0
	for k := uint64(1); cell.kA == 0 || cell.kB == 0; k++ {
		switch p.PartIndex(k) {
		case 0:
			if cell.kA == 0 {
				cell.kA = k
			}
		case 1:
			if cell.kB == 0 {
				cell.kB = k
			}
		}
	}
	if err := p.Put(cell.kA, txOldA); err != nil {
		t.Fatal(err)
	}
	if err := p.Put(cell.kB, txOldB); err != nil {
		t.Fatal(err)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := p.DrainAll(); err != nil {
		t.Fatal(err)
	}
	tc, err := core.NewTxCoordinator(cell.conns[0], "txm.txc")
	if err != nil {
		t.Fatal(err)
	}
	cell.tc = tc
	return cell
}

// probe runs the cross-shard transfer.
func (c *txCell) probe() error {
	return c.p.TxPutMulti(c.tc, []uint64{c.kA, c.kB}, [][]byte{txNewA, txNewB})
}

// countTxProbeVerbs counts the probe's write-class verbs on link ep.
func countTxProbeVerbs(t *testing.T, ep int) int {
	t.Helper()
	cell := newTxCell(t)
	n := 0
	cell.conns[ep].Endpoint().SetFault(func(op rdma.Op, off uint64, sz int) rdma.Fault {
		if writeClass(op) {
			n++
		}
		return rdma.Fault{}
	})
	if err := cell.probe(); err != nil {
		t.Fatalf("counting pass probe failed: %v", err)
	}
	cell.conns[ep].Endpoint().SetFault(nil)
	return n
}

// waitFor polls cond with a deadline (the back-end replayer settles
// decisions asynchronously).
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// runTxCrashPoint kills link ep at its k-th write-class verb, crashes
// the node behind it, recovers, and checks cross-shard atomicity.
func runTxCrashPoint(t *testing.T, ep, k int) {
	t.Helper()
	cell := newTxCell(t)
	seen := 0
	cell.conns[ep].Endpoint().SetFault(func(op rdma.Op, off uint64, sz int) rdma.Fault {
		if !writeClass(op) {
			return rdma.Fault{}
		}
		seen++
		if seen < k {
			return rdma.Fault{}
		}
		// The link stays dead from verb k on; the dying write reaches
		// the device torn.
		f := rdma.Fault{Err: rdma.ErrDisconnected}
		if op == rdma.OpWrite && seen == k {
			f.Truncate = sz / 2
		}
		return f
	})
	if err := cell.probe(); err == nil {
		t.Fatalf("crash point %d/%d: probe succeeded despite dead link", ep, k)
	}
	cell.conns[ep].Endpoint().SetFault(nil)

	// The node behind the dead link power-fails.
	cell.bks[ep].Stop()
	cell.stopped[ep] = true
	cell.devs[ep].Crash(nil)

	// Restart it with a resolver that consults the coordinator's device
	// directly (the §7.2 consultation pass, device-scan form).
	coordDev := cell.devs[0]
	resolver := func(node, slot uint16, txid uint64) backend.TxOutcome {
		if node != 0 {
			return backend.TxUnknown
		}
		out, err := backend.ScanTxOutcome(coordDev, slot, txid)
		if err != nil {
			return backend.TxUnknown
		}
		return out
	}
	bk2, err := backend.New(cell.devs[ep], backend.Options{ID: uint16(ep), Profile: &zprof, TxResolver: resolver})
	if err != nil {
		t.Fatalf("crash point %d/%d: node recovery: %v", ep, k, err)
	}
	bk2.Start()
	cell.bks[ep] = bk2
	cell.stopped[ep] = false

	// Fresh writer front-end: break the dead writer's locks, reopen the
	// store and the coordinator, resolve in-doubt state.
	fe2 := core.NewFrontend(core.FrontendOptions{ID: 7, Mode: core.ModeR(), Profile: &zprof})
	conns2 := make([]*core.Conn, 2)
	for i := 0; i < 2; i++ {
		c2, err := fe2.Connect(cell.bks[i])
		if err != nil {
			t.Fatalf("crash point %d/%d: reconnect %d: %v", ep, k, i, err)
		}
		conns2[i] = c2
		raw, err := c2.Open(fmt.Sprintf("txm#%d", i), true)
		if err != nil {
			t.Fatalf("crash point %d/%d: raw open: %v", ep, k, err)
		}
		if err := raw.BreakLock(1); err != nil {
			t.Fatalf("crash point %d/%d: break lock: %v", ep, k, err)
		}
	}
	tc2, err := core.NewTxCoordinator(conns2[0], "txm.txc")
	if err != nil {
		t.Fatalf("crash point %d/%d: coordinator reopen: %v", ep, k, err)
	}
	p2, err := OpenPartitioned(conns2, "txm", true, crashOpts())
	if err != nil {
		t.Fatalf("crash point %d/%d: reopen: %v", ep, k, err)
	}
	// Which participants still hold durable unresolved prepares, before
	// consultation settles them.
	handles := p2.TxHandles()
	inDoubt := make([]int, len(handles))
	for i, h := range handles {
		inDoubt[i] = len(h.InDoubtPrepares())
	}
	if _, _, err := p2.TxRecover(tc2); err != nil {
		t.Fatalf("crash point %d/%d: tx recovery: %v", ep, k, err)
	}
	// Resolution must leave nothing held on either node.
	for i, h := range handles {
		i, h := i, h
		waitFor(t, "in-doubt resolution", func() bool {
			ids, err := cell.bks[i].InDoubt(h.Slot())
			return err == nil && len(ids) == 0
		})
	}
	if err := p2.DrainAll(); err != nil {
		t.Fatalf("crash point %d/%d: drain: %v", ep, k, err)
	}

	vA, okA, err := p2.Get(cell.kA)
	if err != nil || !okA {
		t.Fatalf("crash point %d/%d: read A: ok=%v err=%v", ep, k, okA, err)
	}
	vB, okB, err := p2.Get(cell.kB)
	if err != nil || !okB {
		t.Fatalf("crash point %d/%d: read B: ok=%v err=%v", ep, k, okB, err)
	}
	newA, newB := bytes.Equal(vA, txNewA), bytes.Equal(vB, txNewB)
	if newA != newB {
		t.Fatalf("crash point %d/%d: atomicity violated: A new=%v B new=%v", ep, k, newA, newB)
	}
	if !newA {
		if !bytes.Equal(vA, txOldA) || !bytes.Equal(vB, txOldB) {
			t.Fatalf("crash point %d/%d: aborted state mangled: %q / %q", ep, k, vA, vB)
		}
		// Reclaim-ledger model check: a durable prepare that resolved to
		// abort must have its log span ledgered for the next scrub —
		// prepared pages are never leaked.
		for i, h := range handles {
			if inDoubt[i] == 0 {
				continue
			}
			i, h := i, h
			waitFor(t, "aborted prepare ledgered", func() bool {
				mem, _, err := cell.bks[i].ReclaimPending(h.Slot())
				return err == nil && mem > 0
			})
		}
	}
	// Settled either way: no pending op-log records may remain for
	// re-execution (the decision's cover retires them).
	for i, h := range handles {
		ops, err := h.PendingOps()
		if err != nil {
			t.Fatalf("crash point %d/%d: pending ops %d: %v", ep, k, i, err)
		}
		if len(ops) != 0 {
			t.Fatalf("crash point %d/%d: partition %d left %d ops for re-execution", ep, k, i, len(ops))
		}
	}
}

func TestTxCrashMatrixCrossShard(t *testing.T) {
	for ep := 0; ep < 2; ep++ {
		ep := ep
		role := "coordinator"
		if ep == 1 {
			role = "participant"
		}
		t.Run(fmt.Sprintf("%s-link", role), func(t *testing.T) {
			n := countTxProbeVerbs(t, ep)
			if n == 0 {
				t.Fatal("probe issued no write-class verbs on this link")
			}
			for k := 1; k <= n; k++ {
				runTxCrashPoint(t, ep, k)
			}
			t.Logf("%s link: %d crash points survived", role, n)
		})
	}
}

// TestTxCrashCommitDurableBeforeApply commits fully, then power-fails
// the remote participant before its replayer materializes the buffered
// prepare: recovery must replay prepare + decision from the log and
// surface the committed value.
func TestTxCrashCommitDurableBeforeApply(t *testing.T) {
	cell := newTxCell(t)
	if err := cell.probe(); err != nil {
		t.Fatal(err)
	}
	// No drain: the decision is durable in node 1's log but its
	// application may be anywhere between buffered and persisted.
	cell.bks[1].Stop()
	cell.stopped[1] = true
	cell.devs[1].Crash(nil)
	bk2, err := backend.New(cell.devs[1], backend.Options{ID: 1, Profile: &zprof})
	if err != nil {
		t.Fatal(err)
	}
	bk2.Start()
	cell.bks[1] = bk2
	cell.stopped[1] = false

	fe2 := core.NewFrontend(core.FrontendOptions{ID: 7, Mode: core.ModeR(), Profile: &zprof})
	conns2 := make([]*core.Conn, 2)
	for i := 0; i < 2; i++ {
		c2, err := fe2.Connect(cell.bks[i])
		if err != nil {
			t.Fatal(err)
		}
		conns2[i] = c2
		raw, err := c2.Open(fmt.Sprintf("txm#%d", i), true)
		if err != nil {
			t.Fatal(err)
		}
		if err := raw.BreakLock(1); err != nil {
			t.Fatal(err)
		}
	}
	p2, err := OpenPartitioned(conns2, "txm", true, crashOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.DrainAll(); err != nil {
		t.Fatal(err)
	}
	vA, okA, err := p2.Get(cell.kA)
	if err != nil || !okA {
		t.Fatalf("read A: ok=%v err=%v", okA, err)
	}
	vB, okB, err := p2.Get(cell.kB)
	if err != nil || !okB {
		t.Fatalf("read B: ok=%v err=%v", okB, err)
	}
	if !bytes.Equal(vA, txNewA) || !bytes.Equal(vB, txNewB) {
		t.Fatalf("committed transfer lost across crash: %q / %q", vA, vB)
	}
}
