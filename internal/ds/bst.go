package ds

import (
	"encoding/binary"
	"fmt"
	"sort"

	"asymnvm/internal/backend"
	"asymnvm/internal/core"
	"asymnvm/internal/logrec"
)

// BST is the lock-based binary search tree of the evaluation. Unbalanced
// (as in the paper's benchmarks, keys arrive in random order, giving
// O(log n) expected depth); the writer holds the exclusive lock, readers
// use the retry seqlock; nodes at the top of the tree are cached under
// the adaptive level policy of §8.3.
//
// Node layout: {key u64, left u64, right u64, vlen u32, pad, value[cap]}.
const bstHdr = 32

// BST is a persistent binary search tree.
type BST struct {
	h      *core.Handle
	w      writerSession
	cap    int
	pol    *levelPolicy
	writer bool
}

func (t *BST) nodeSize() int { return bstHdr + t.cap }

// CreateBST registers a new tree.
func CreateBST(c *core.Conn, name string, opts Options) (*BST, error) {
	opts.fill()
	h, err := c.Create(name, backend.TypeBST, opts.Create)
	if err != nil {
		return nil, err
	}
	return newBST(h, opts, true)
}

// OpenBST attaches to an existing tree.
func OpenBST(c *core.Conn, name string, writer bool, opts Options) (*BST, error) {
	opts.fill()
	h, err := c.Open(name, writer)
	if err != nil {
		return nil, err
	}
	t, err := newBST(h, opts, writer)
	if err != nil {
		return nil, err
	}
	if writer {
		if _, err := ReplayPending(h, t); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func newBST(h *core.Handle, opts Options, writer bool) (*BST, error) {
	t := &BST{h: h, w: writerSession{h: h, lockPerOp: opts.LockPerOp},
		cap: opts.ValueCap, pol: newLevelPolicy(), writer: writer}
	if opts.FlatCache {
		t.pol = newFlatPolicy()
	}
	if writer && !opts.LockPerOp {
		if err := h.WriterLock(); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Handle exposes the underlying framework handle.
func (t *BST) Handle() *core.Handle { return t.h }

func (t *BST) encodeNode(key, left, right uint64, val []byte) []byte {
	buf := make([]byte, t.nodeSize())
	binary.LittleEndian.PutUint64(buf, key)
	binary.LittleEndian.PutUint64(buf[8:], left)
	binary.LittleEndian.PutUint64(buf[16:], right)
	binary.LittleEndian.PutUint32(buf[24:], uint32(len(val)))
	copy(buf[bstHdr:], val)
	return buf
}

type bstNode struct {
	key, left, right uint64
	val              []byte
}

func (t *BST) decodeNode(buf []byte) (bstNode, error) {
	var n bstNode
	n.key = binary.LittleEndian.Uint64(buf)
	n.left = binary.LittleEndian.Uint64(buf[8:])
	n.right = binary.LittleEndian.Uint64(buf[16:])
	vlen := binary.LittleEndian.Uint32(buf[24:])
	if int(vlen) > t.cap {
		return n, fmt.Errorf("ds: corrupt bst node (vlen=%d)", vlen)
	}
	n.val = append([]byte(nil), buf[bstHdr:bstHdr+int(vlen)]...)
	return n, nil
}

// readNode reads one node at a depth, consulting the level policy.
func (t *BST) readNode(addr uint64, depth int) (bstNode, error) {
	buf, err := t.h.Read(addr, t.nodeSize(), t.pol.cacheable(depth))
	if err != nil {
		return bstNode{}, err
	}
	return t.decodeNode(buf)
}

// Put inserts or updates key.
func (t *BST) Put(key uint64, val []byte) error {
	if len(val) > t.cap {
		return ErrValueTooLarge
	}
	if err := t.w.begin(); err != nil {
		return err
	}
	opAbs, err := t.h.OpLog(OpPut, kvParams(key, val))
	if err != nil {
		return err
	}
	if err := t.put(key, val, opAbs); err != nil {
		return err
	}
	t.pol.observe(t.h.Conn().Frontend().Stats())
	return t.w.end()
}

func (t *BST) put(key uint64, val []byte, opAbs uint64) error {
	root, err := t.h.ReadRoot()
	if err != nil {
		return err
	}
	if root == 0 {
		node, err := t.writeNewNode(key, val, opAbs)
		if err != nil {
			return err
		}
		return t.h.WriteRoot(node)
	}
	cur := root
	depth := 0
	for {
		n, err := t.readNode(cur, depth)
		if err != nil {
			return err
		}
		switch {
		case key == n.key:
			// Value update: rewrite the node unit in place.
			return t.writeNode(cur, n.key, n.left, n.right, val, opAbs)
		case key < n.key:
			if n.left == 0 {
				child, err := t.writeNewNode(key, val, opAbs)
				if err != nil {
					return err
				}
				return t.writeNode(cur, n.key, child, n.right, n.val, 0)
			}
			cur = n.left
		default:
			if n.right == 0 {
				child, err := t.writeNewNode(key, val, opAbs)
				if err != nil {
					return err
				}
				return t.writeNode(cur, n.key, n.left, child, n.val, 0)
			}
			cur = n.right
		}
		depth++
	}
}

// writeNewNode allocates and logs a fresh leaf.
func (t *BST) writeNewNode(key uint64, val []byte, opAbs uint64) (uint64, error) {
	node, err := t.h.Alloc(t.nodeSize())
	if err != nil {
		return 0, err
	}
	return node, t.writeNode(node, key, 0, 0, val, opAbs)
}

// writeNode logs a whole node unit; when the value bytes came from the
// current op-log record the entry uses the pointer form for the value-
// bearing node (here the whole node is one unit, so the inline form is
// used unless the node is exactly the value payload — we pass opAbs
// through for structures that split value blobs out).
func (t *BST) writeNode(addr uint64, key, left, right uint64, val []byte, opAbs uint64) error {
	_ = opAbs
	return t.h.Write(addr, t.encodeNode(key, left, right, val))
}

// Get looks up a key under the retry seqlock.
func (t *BST) Get(key uint64) ([]byte, bool, error) {
	t.h.Conn().Frontend().ChargeOp()
	var out []byte
	var found bool
	err := readRetry(t.h, func() error {
		out, found = nil, false
		root, err := t.h.ReadRoot()
		if err != nil {
			return err
		}
		cur := root
		depth := 0
		for cur != 0 {
			n, err := t.readNode(cur, depth)
			if err != nil {
				return err
			}
			if key == n.key {
				out, found = n.val, true
				return nil
			}
			if key < n.key {
				cur = n.left
			} else {
				cur = n.right
			}
			depth++
		}
		return nil
	})
	t.pol.observe(t.h.Conn().Frontend().Stats())
	return out, found, err
}

// VectorPut is the vector write of Algorithm 3: the batch is sorted and
// inserted with one shared descent, so reads of common path nodes happen
// once instead of once per key.
func (t *BST) VectorPut(keys []uint64, vals [][]byte) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("ds: vector put length mismatch")
	}
	if len(keys) == 0 {
		return nil
	}
	if err := t.w.begin(); err != nil {
		return err
	}
	// One op log covers the vector (OpPutMany).
	params := encodePutMany(keys, vals)
	if _, err := t.h.OpLog(OpPutMany, params); err != nil {
		return err
	}
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	sk := make([]uint64, len(idx))
	sv := make([][]byte, len(idx))
	for i, j := range idx {
		sk[i] = keys[j]
		sv[i] = vals[j]
	}
	root, err := t.h.ReadRoot()
	if err != nil {
		return err
	}
	if root == 0 {
		mid := len(sk) / 2
		node, err := t.writeNewNode(sk[mid], sv[mid], 0)
		if err != nil {
			return err
		}
		if err := t.h.WriteRoot(node); err != nil {
			return err
		}
		rest := append(append([][]byte{}, sv[:mid]...), sv[mid+1:]...)
		restK := append(append([]uint64{}, sk[:mid]...), sk[mid+1:]...)
		for i := range restK {
			if err := t.put(restK[i], rest[i], 0); err != nil {
				return err
			}
		}
		return t.w.end()
	}
	if err := t.vectorInsert(root, 0, sk, sv); err != nil {
		return err
	}
	t.pol.observe(t.h.Conn().Frontend().Stats())
	return t.w.end()
}

// vectorInsert splits the sorted run around each node's key and recurses,
// the queue-driven descent of Algorithm 3. The node's in-memory image
// accumulates every change (value update, new children) and is written
// once, so the coalesced memory log carries its final state.
func (t *BST) vectorInsert(node uint64, depth int, keys []uint64, vals [][]byte) error {
	if len(keys) == 0 {
		return nil
	}
	n, err := t.readNode(node, depth)
	if err != nil {
		return err
	}
	mid := sort.Search(len(keys), func(i int) bool { return keys[i] >= n.key })
	hi := mid
	dirty := false
	if hi < len(keys) && keys[hi] == n.key {
		n.val = vals[hi] // exact match: update in place
		hi++
		dirty = true
	}
	left, lv := keys[:mid], vals[:mid]
	right, rv := keys[hi:], vals[hi:]
	type pendingDescent struct {
		child uint64
		keys  []uint64
		vals  [][]byte
	}
	var descend []pendingDescent // recursion happens after the node write
	if len(left) > 0 {
		if n.left == 0 {
			m := len(left) / 2
			child, err := t.writeNewNode(left[m], lv[m], 0)
			if err != nil {
				return err
			}
			n.left = child
			dirty = true
			restK := append(append([]uint64{}, left[:m]...), left[m+1:]...)
			restV := append(append([][]byte{}, lv[:m]...), lv[m+1:]...)
			descend = append(descend, pendingDescent{child, restK, restV})
		} else {
			descend = append(descend, pendingDescent{n.left, left, lv})
		}
	}
	if len(right) > 0 {
		if n.right == 0 {
			m := len(right) / 2
			child, err := t.writeNewNode(right[m], rv[m], 0)
			if err != nil {
				return err
			}
			n.right = child
			dirty = true
			restK := append(append([]uint64{}, right[:m]...), right[m+1:]...)
			restV := append(append([][]byte{}, rv[:m]...), rv[m+1:]...)
			descend = append(descend, pendingDescent{child, restK, restV})
		} else {
			descend = append(descend, pendingDescent{n.right, right, rv})
		}
	}
	if dirty {
		if err := t.writeNode(node, n.key, n.left, n.right, n.val, 0); err != nil {
			return err
		}
	}
	for _, d := range descend {
		if err := t.vectorInsert(d.child, depth+1, d.keys, d.vals); err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes the batch buffers.
func (t *BST) Flush() error { return t.h.Flush() }

// Drain flushes and waits for replay.
func (t *BST) Drain() error {
	if err := t.h.Flush(); err != nil {
		return err
	}
	return t.h.Drain()
}

// Close drains and releases the writer lock.
func (t *BST) Close() error {
	if !t.writer {
		return nil
	}
	if err := t.Drain(); err != nil {
		return err
	}
	return t.h.WriterUnlock()
}

// ReplayOp re-executes one pending op-log record.
func (t *BST) ReplayOp(rec logrec.OpRecord) error {
	switch rec.OpType &^ logrec.OpTxFlag {
	case OpPut:
		key, val, err := splitKV(rec.Params)
		if err != nil {
			return err
		}
		if err := t.put(key, val, 0); err != nil {
			return err
		}
		return t.h.EndOp()
	case OpPutMany:
		keys, vals, err := decodePutMany(rec.Params)
		if err != nil {
			return err
		}
		for i := range keys {
			if err := t.put(keys[i], vals[i], 0); err != nil {
				return err
			}
		}
		return t.h.EndOp()
	default:
		return fmt.Errorf("ds: bst cannot replay op %d", rec.OpType)
	}
}

// encodePutMany packs a key/value vector into op-log params:
// {count u32, keys..., (vlen u32, val)...}.
func encodePutMany(keys []uint64, vals [][]byte) []byte {
	n := 4 + 8*len(keys)
	for _, v := range vals {
		n += 4 + len(v)
	}
	p := make([]byte, 0, n)
	var b8 [8]byte
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(len(keys)))
	p = append(p, b4[:]...)
	for _, k := range keys {
		binary.LittleEndian.PutUint64(b8[:], k)
		p = append(p, b8[:]...)
	}
	for _, v := range vals {
		binary.LittleEndian.PutUint32(b4[:], uint32(len(v)))
		p = append(p, b4[:]...)
		p = append(p, v...)
	}
	return p
}

// decodePutMany unpacks a PutMany parameter block.
func decodePutMany(p []byte) ([]uint64, [][]byte, error) {
	if len(p) < 4 {
		return nil, nil, fmt.Errorf("ds: short putmany params")
	}
	cnt := int(binary.LittleEndian.Uint32(p))
	off := 4
	if len(p) < off+8*cnt {
		return nil, nil, fmt.Errorf("ds: short putmany keys")
	}
	keys := make([]uint64, cnt)
	for i := 0; i < cnt; i++ {
		keys[i] = binary.LittleEndian.Uint64(p[off:])
		off += 8
	}
	vals := make([][]byte, cnt)
	for i := 0; i < cnt; i++ {
		if len(p) < off+4 {
			return nil, nil, fmt.Errorf("ds: short putmany vlen")
		}
		vl := int(binary.LittleEndian.Uint32(p[off:]))
		off += 4
		if len(p) < off+vl {
			return nil, nil, fmt.Errorf("ds: short putmany value")
		}
		vals[i] = append([]byte(nil), p[off:off+vl]...)
		off += vl
	}
	return keys, vals, nil
}
