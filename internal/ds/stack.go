package ds

import (
	"encoding/binary"
	"errors"
	"fmt"

	"asymnvm/internal/backend"
	"asymnvm/internal/core"
	"asymnvm/internal/logrec"
)

// Stack is the list-based LIFO of §8.1. The root pointer is the top node.
//
// Its structure-specific optimization is operation annihilation: with
// batching enabled, pushes whose memory logs have not been flushed yet
// stay in a front-end buffer; a pop first consumes that buffer, so a
// push/pop pair costs two operation-log appends and zero memory logs —
// "the effective pushes will be annulled by pops".
//
// Stack node layout: {next u64, vlen u32, pad u32, value[cap]}.
const stackHdr = 16

// Stack is a persistent LIFO. One writer per instance (SWMR); the
// annihilation buffer lives in the writer.
type Stack struct {
	h    *core.Handle
	w    writerSession
	cap  int
	top  uint64 // writer's view of the root (top) pointer
	size int    // persisted nodes (writer-side count, not persisted)
	// buffered holds pushes whose memory effects are deferred for
	// annihilation. Only non-empty in batch mode.
	buffered [][]byte
}

func (s *Stack) nodeSize() int { return stackHdr + s.cap }

// CreateStack registers a new stack.
func CreateStack(c *core.Conn, name string, opts Options) (*Stack, error) {
	opts.fill()
	h, err := c.Create(name, backend.TypeStack, opts.Create)
	if err != nil {
		return nil, err
	}
	return newStack(h, opts)
}

// OpenStack attaches to an existing stack as the writer, recovering any
// acknowledged-but-uncovered operations.
func OpenStack(c *core.Conn, name string, opts Options) (*Stack, error) {
	opts.fill()
	h, err := c.Open(name, true)
	if err != nil {
		return nil, err
	}
	s, err := newStack(h, opts)
	if err != nil {
		return nil, err
	}
	if _, err := ReplayPending(h, s); err != nil {
		return nil, err
	}
	return s, nil
}

func newStack(h *core.Handle, opts Options) (*Stack, error) {
	s := &Stack{h: h, w: writerSession{h: h, lockPerOp: opts.LockPerOp}, cap: opts.ValueCap}
	h.SetOpGroupCommit(true) // §8.1: op logs buffer for annihilation
	if !opts.LockPerOp {
		if err := h.WriterLock(); err != nil {
			return nil, err
		}
	}
	top, err := h.ReadRoot()
	if err != nil {
		return nil, err
	}
	s.top = top
	// Recount persisted elements (open is rare; pushes/pops keep the
	// count incrementally afterwards).
	for n := top; n != 0; {
		buf, err := h.Read(n, s.nodeSize(), false)
		if err != nil {
			return nil, err
		}
		next, _, err := s.decodeNode(buf)
		if err != nil {
			return nil, err
		}
		n = next
		s.size++
	}
	return s, nil
}

// Handle exposes the underlying framework handle.
func (s *Stack) Handle() *core.Handle { return s.h }

func (s *Stack) encodeNode(next uint64, val []byte) []byte {
	buf := make([]byte, s.nodeSize())
	binary.LittleEndian.PutUint64(buf, next)
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(val)))
	copy(buf[stackHdr:], val)
	return buf
}

func (s *Stack) decodeNode(buf []byte) (next uint64, val []byte, err error) {
	if len(buf) < stackHdr {
		return 0, nil, errors.New("ds: short stack node")
	}
	next = binary.LittleEndian.Uint64(buf)
	vlen := binary.LittleEndian.Uint32(buf[8:])
	if int(vlen) > s.cap {
		return 0, nil, fmt.Errorf("ds: corrupt stack node (vlen=%d)", vlen)
	}
	return next, append([]byte(nil), buf[stackHdr:stackHdr+int(vlen)]...), nil
}

// batching reports whether annihilation buffering is active.
func (s *Stack) batching() bool {
	m := s.h.Conn().Frontend().Mode()
	return m.OpLog && m.Batch > 1
}

// Push pushes a value.
func (s *Stack) Push(val []byte) error {
	if len(val) > s.cap {
		return ErrValueTooLarge
	}
	if err := s.w.begin(); err != nil {
		return err
	}
	if _, err := s.h.OpLog(OpPush, kvParams(0, val)); err != nil {
		return err
	}
	if s.batching() {
		// Defer the memory effects; a pop may annul this push before the
		// batch flushes.
		s.buffered = append(s.buffered, append([]byte(nil), val...))
		return s.w.end()
	}
	if err := s.materializePush(val); err != nil {
		return err
	}
	return s.w.end()
}

// materializePush allocates and links one node.
func (s *Stack) materializePush(val []byte) error {
	node, err := s.h.Alloc(s.nodeSize())
	if err != nil {
		return err
	}
	if err := s.h.Write(node, s.encodeNode(s.top, val)); err != nil {
		return err
	}
	if err := s.h.WriteRoot(node); err != nil {
		return err
	}
	s.top = node
	s.size++
	return nil
}

// Pop removes and returns the top value; ok is false on empty.
func (s *Stack) Pop() ([]byte, bool, error) {
	if err := s.w.begin(); err != nil {
		return nil, false, err
	}
	if _, err := s.h.OpLog(OpPop, nil); err != nil {
		return nil, false, err
	}
	// Annihilation: the newest un-materialized push is the stack top.
	if n := len(s.buffered); n > 0 {
		val := s.buffered[n-1]
		s.buffered = s.buffered[:n-1]
		s.h.Conn().Frontend().Stats().OpsAnnulled.Add(2)
		return val, true, s.w.end()
	}
	if s.top == 0 {
		return nil, false, s.w.end()
	}
	buf, err := s.h.Read(s.top, s.nodeSize(), true)
	if err != nil {
		return nil, false, err
	}
	next, val, err := s.decodeNode(buf)
	if err != nil {
		return nil, false, err
	}
	if err := s.h.WriteRoot(next); err != nil {
		return nil, false, err
	}
	old := s.top
	s.top = next
	s.size--
	s.h.DelayedFree(old, s.nodeSize())
	return val, true, s.w.end()
}

// Len reports the writer-visible element count (persisted + buffered).
func (s *Stack) Len() int { return s.size + len(s.buffered) }

// Flush materializes buffered pushes and flushes the batch.
func (s *Stack) Flush() error {
	for _, val := range s.buffered {
		if err := s.materializePush(val); err != nil {
			return err
		}
	}
	s.buffered = nil
	return s.h.Flush()
}

// Drain flushes and waits for the replayer (a persistent fence).
func (s *Stack) Drain() error {
	if err := s.Flush(); err != nil {
		return err
	}
	return s.h.Drain()
}

// Close flushes, drains, and releases the coarse writer lock.
func (s *Stack) Close() error {
	if err := s.Drain(); err != nil {
		return err
	}
	return s.h.WriterUnlock()
}

// ReplayOp re-executes one op-log record (recovery path). The stack's
// state already reflects every *applied* transaction; pending records are
// re-run in order.
func (s *Stack) ReplayOp(rec logrec.OpRecord) error {
	switch rec.OpType &^ logrec.OpTxFlag {
	case OpPush:
		_, val, err := splitKV(rec.Params)
		if err != nil {
			return err
		}
		if err := s.materializePush(val); err != nil {
			return err
		}
		return s.h.EndOp()
	case OpPop:
		if s.top == 0 {
			return nil
		}
		buf, err := s.h.Read(s.top, s.nodeSize(), false)
		if err != nil {
			return err
		}
		next, _, err := s.decodeNode(buf)
		if err != nil {
			return err
		}
		if err := s.h.WriteRoot(next); err != nil {
			return err
		}
		s.top = next
		s.size--
		return s.h.EndOp()
	default:
		return fmt.Errorf("ds: stack cannot replay op %d", rec.OpType)
	}
}
