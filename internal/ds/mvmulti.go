package ds

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"asymnvm/internal/backend"
	"asymnvm/internal/core"
)

// Lock-free multi-writer MV structures. The single-writer MV trees of
// §6.2 already give readers lock-free traversals (immutable nodes, one
// atomic root switch); what serializes writers is the structure's writer
// lock. MVMulti removes it: every writer front-end owns a private "lane"
// slot ("<name>@<feID>") whose memory/op logs carry its node writes —
// node addresses are global, so the back-end replayer applies them into
// the shared data area no matter which slot's log delivered them — while
// the shared root word stays in the parent structure's naming entry and
// is moved by compare-and-swap (core.RedirectRoot):
//
//	read root (uncached) -> path-copy new version through the lane's
//	logs -> drain the lane (nodes must be applied before they are
//	reachable) -> CAS the parent root old->new.
//
// A lost CAS surfaces as core.ErrRootConflict; Put re-executes with
// bounded exponential backoff on the virtual clock, counting each lost
// race in stats.CASRetries. Replaced nodes are leaked, not reclaimed
// (no cross-front-end GC), which is also what keeps every concurrently
// cached node immutable. The root CAS bypasses the log stream, so
// mirror replicas do not see root movement — mirror-served reads are
// for log-published (striped / single-writer) structures.
type MVMulti struct {
	kv KV
	h  *core.Handle
	fe *core.Frontend
}

// mvCASMaxRetry bounds the re-execution loop: past it the conflict is
// reported to the caller instead of retried (livelock guard).
const mvCASMaxRetry = 64

// OpenMVMulti attaches one writer front-end to the shared MV structure
// name (created normally with CreateMVBST/CreateMVBPTree), creating or
// reopening this front-end's lane slot. kind must be an MV kind.
func OpenMVMulti(c *core.Conn, kind KVKind, name string, opts Options) (*MVMulti, error) {
	var typ uint8
	switch kind {
	case KindMVBST:
		typ = backend.TypeMVBST
	case KindMVBPTree:
		typ = backend.TypeMVBPTree
	default:
		return nil, fmt.Errorf("ds: kind %d is not multi-version", kind)
	}
	opts.fill()
	parent, err := c.Open(name, false)
	if err != nil {
		return nil, err
	}
	lane := fmt.Sprintf("%s@%d", name, c.Frontend().ID())
	h, err := c.Open(lane, true)
	if errors.Is(err, core.ErrNotFound) {
		h, err = c.Create(lane, typ, opts.Create)
	}
	if err != nil {
		return nil, err
	}
	// Redirect before constructing the structure (and before replaying
	// any interrupted operations), so every root access — including
	// recovery's — goes through the shared word.
	h.RedirectRoot(parent.Slot())
	// A reattach after a crash finds the lane lock still journalled to
	// this front-end; break our own stale hold before relocking.
	if err := h.BreakLock(c.Frontend().ID()); err != nil {
		return nil, err
	}
	var kv KV
	switch kind {
	case KindMVBST:
		kv, err = newMVBST(h, opts, true)
	case KindMVBPTree:
		kv, err = newMVBPTree(h, opts, true)
	}
	if err != nil {
		return nil, err
	}
	m := &MVMulti{kv: kv, h: h, fe: c.Frontend()}
	if _, err := ReplayPending(h, kv.(Replayer)); err != nil {
		return nil, err
	}
	return m, nil
}

// Handle exposes the lane handle.
func (m *MVMulti) Handle() *core.Handle { return m.h }

// Put inserts or updates key, re-executing on publication races with
// bounded exponential backoff.
func (m *MVMulti) Put(key uint64, val []byte) error {
	for attempt := 0; ; attempt++ {
		err := m.kv.Put(key, val)
		if err == nil {
			return nil
		}
		if !errors.Is(err, core.ErrRootConflict) || attempt >= mvCASMaxRetry {
			return err
		}
		m.backoff(attempt)
	}
}

// backoff charges a jittered exponentially growing pause to the writer's
// virtual clock and yields, so racing writers deterministically desync in
// simulated time and the host scheduler gets a chance to run the winner.
func (m *MVMulti) backoff(attempt int) {
	shift := attempt
	if shift > 6 {
		shift = 6
	}
	base := time.Duration(100<<uint(shift)) * time.Nanosecond
	jitter := time.Duration(m.fe.Rand() % uint64(base))
	m.fe.Clock().Advance(base + jitter)
	runtime.Gosched()
}

// Get traverses the current shared version through the lane handle
// (root loads are uncached in multi-writer mode, so the view is fresh).
func (m *MVMulti) Get(key uint64) ([]byte, bool, error) { return m.kv.Get(key) }

// Flush flushes the lane's buffers (publication already drains per put).
func (m *MVMulti) Flush() error { return m.kv.Flush() }

// Close drains the lane and releases its (uncontended) lane lock.
func (m *MVMulti) Close() error {
	if err := m.h.Drain(); err != nil {
		return err
	}
	return m.h.WriterUnlock()
}
