package ds

import (
	"testing"

	"asymnvm/internal/core"
)

// TestHotPathAllocsUntraced pins the per-operation allocation counts of
// the Get/Put hot path with tracing disabled (the default: no tracer is
// installed, every trace call is a nil-receiver no-op). The tracing plane
// must stay free when off — if these ceilings rise, a trace-path
// allocation leaked onto the hot path.
func TestHotPathAllocsUntraced(t *testing.T) {
	r := newRig(t)
	c := r.conn(1, core.ModeRC(1<<20))
	ht, err := CreateHashTable(c, "allocs", Options{Create: testCreate})
	if err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 32)
	// Warm the structure, cache and log areas so steady state is measured.
	for i := 0; i < 256; i++ {
		if err := ht.Put(uint64(i%16+1), val); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ht.Get(uint64(i%16 + 1)); err != nil {
			t.Fatal(err)
		}
	}

	putAllocs := testing.AllocsPerRun(200, func() {
		if err := ht.Put(3, val); err != nil {
			t.Fatal(err)
		}
	})
	getAllocs := testing.AllocsPerRun(200, func() {
		if _, _, err := ht.Get(3); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("untraced hot path: put=%.1f get=%.1f allocs/op", putAllocs, getAllocs)

	// Ceilings are the measured steady-state counts at the time the trace
	// plane was introduced. They bound regressions; they are not targets.
	const putCeiling, getCeiling = 15, 4
	if putAllocs > putCeiling {
		t.Errorf("Put allocates %.1f/op untraced, ceiling %d", putAllocs, putCeiling)
	}
	if getAllocs > getCeiling {
		t.Errorf("Get allocates %.1f/op untraced, ceiling %d", getAllocs, getCeiling)
	}
}
