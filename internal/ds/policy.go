package ds

import "asymnvm/internal/stats"

// levelPolicy implements the tree-caching heuristic of §8.3: nodes at
// depth <= N are cached (they are hot by construction — the root is on
// every path), deeper nodes are read directly. N adapts to the observed
// miss ratio α: α > 50% shrinks N, α < 25% grows it. Compared to plain
// LRU this "hints" the cache toward the hot upper levels.
type levelPolicy struct {
	n        int
	flat     bool // never adapt: cache everything (ablation baseline)
	window   int64
	lastHit  int64
	lastMiss int64
}

const (
	levelPolicyStart  = 8
	levelPolicyWindow = 1024
	levelPolicyMax    = 40
)

func newLevelPolicy() *levelPolicy { return &levelPolicy{n: levelPolicyStart} }

// newFlatPolicy caches every level (the native-LRU ablation baseline).
func newFlatPolicy() *levelPolicy { return &levelPolicy{n: 1 << 20, flat: true} }

// cacheable reports whether a node at the given depth should be cached.
func (p *levelPolicy) cacheable(depth int) bool { return depth <= p.n }

// observe samples the cache counters once per operation and adapts N
// when a window's worth of accesses has accumulated.
func (p *levelPolicy) observe(st *stats.Stats) {
	if p.flat {
		return
	}
	hit, miss := st.CacheHit.Load(), st.CacheMiss.Load()
	dh, dm := hit-p.lastHit, miss-p.lastMiss
	if dh+dm < levelPolicyWindow {
		return
	}
	p.lastHit, p.lastMiss = hit, miss
	alpha := float64(dm) / float64(dh+dm)
	switch {
	case alpha > 0.50 && p.n > 1:
		p.n--
	case alpha < 0.25 && p.n < levelPolicyMax:
		p.n++
	}
}

// Level returns the current threshold (exposed for the Figure 7 ablation).
func (p *levelPolicy) Level() int { return p.n }
