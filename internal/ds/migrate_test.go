package ds

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"asymnvm/internal/backend"
	"asymnvm/internal/core"
	"asymnvm/internal/nvm"
)

// migCell is an N-back-end world with one writer front-end attached to
// every back-end — the minimal elastic-rebalancing topology.
type migCell struct {
	t       *testing.T
	devs    []*nvm.Device
	bks     []*backend.Backend
	stopped []bool
	conns   []*core.Conn
}

func newMigCell(t *testing.T, n int) *migCell {
	t.Helper()
	c := &migCell{t: t}
	for i := 0; i < n; i++ {
		dev := nvm.NewDevice(64 << 20)
		bk, err := backend.New(dev, backend.Options{ID: uint16(i), Profile: &zprof})
		if err != nil {
			t.Fatal(err)
		}
		bk.Start()
		c.devs = append(c.devs, dev)
		c.bks = append(c.bks, bk)
		c.stopped = append(c.stopped, false)
	}
	t.Cleanup(func() {
		for i, bk := range c.bks {
			if !c.stopped[i] {
				bk.Stop()
			}
		}
	})
	c.conns = c.connect(1)
	return c
}

// connect attaches a fresh front-end to every live back-end.
func (c *migCell) connect(feID uint16) []*core.Conn {
	c.t.Helper()
	fe := core.NewFrontend(core.FrontendOptions{ID: feID, Mode: core.ModeRC(4 << 20), Profile: &zprof})
	conns := make([]*core.Conn, 0, len(c.bks))
	for _, bk := range c.bks {
		conn, err := fe.Connect(bk)
		if err != nil {
			c.t.Fatal(err)
		}
		conns = append(conns, conn)
	}
	return conns
}

// crashBackend power-fails back-end i and restarts it on the same
// device. Existing connections to it are dead; callers re-connect.
func (c *migCell) crashBackend(i int) {
	c.t.Helper()
	c.bks[i].Stop()
	c.devs[i].Crash(nil)
	bk, err := backend.New(c.devs[i], backend.Options{ID: uint16(i), Profile: &zprof})
	if err != nil {
		c.t.Fatal(err)
	}
	bk.Start()
	c.bks[i] = bk
}

// migKeysFor returns n keys owned by partition pi (skipping base seeds).
func migKeysFor(pi, parts, n int, from uint64) []uint64 {
	var keys []uint64
	for k := from; len(keys) < n; k++ {
		if partIndex(k, parts) == pi {
			keys = append(keys, k)
		}
	}
	return keys
}

// TestElasticMigrationHandoff drives one full handoff — begin, snapshot
// stream, double-log window, cutover, finish — and checks that no
// committed write is lost or duplicated, the writer and fresh openers
// route to the new owner, and the stats counters tell the story.
func TestElasticMigrationHandoff(t *testing.T) {
	cell := newMigCell(t, 2)
	const parts = 4
	p, err := CreateElastic(cell.conns, KindHashTable, "el", parts, Options{Create: testCreate, Buckets: 256})
	if err != nil {
		t.Fatal(err)
	}
	oracle := map[uint64][]byte{}
	put := func(k uint64, i int) {
		t.Helper()
		if err := p.Put(k, val(i)); err != nil {
			t.Fatal(err)
		}
		oracle[k] = val(i)
	}
	for i := 1; i <= 200; i++ {
		put(uint64(i), i)
	}
	if err := p.DrainAll(); err != nil {
		t.Fatal(err)
	}

	const pi = 1 // default owner conns[1]; hand off to conns[0]
	dst := cell.conns[0]
	st := p.meta.Conn().Frontend().Stats()
	base := st.Snapshot()

	m, err := p.BeginMigration(pi, dst)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Migrating(); got != pi {
		t.Fatalf("Migrating() = %d, want %d", got, pi)
	}
	// Writes before the snapshot land in the source only and ride the
	// stream; writes after it double-log.
	pre := migKeysFor(pi, parts, 8, 1000)
	for i, k := range pre {
		put(k, 2000+i)
	}
	n, err := m.StreamSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("snapshot streamed zero ops")
	}
	suf := migKeysFor(pi, parts, 8, 5000)
	for i, k := range suf {
		put(k, 3000+i)
	}
	// Overwrite a streamed key during the window: last write must win.
	put(pre[0], 4000)
	if err := m.Cutover(); err != nil {
		t.Fatal(err)
	}
	if err := m.Finish(); err != nil {
		t.Fatal(err)
	}

	if h := p.PartHandle(pi); h == nil || h.Conn() != dst {
		t.Fatal("writer does not route the migrated partition to the destination")
	}
	if err := p.DrainAll(); err != nil {
		t.Fatal(err)
	}
	for k, want := range oracle {
		got, ok, err := p.Get(k)
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("key %d after cutover: ok=%v err=%v got=%q want=%q", k, ok, err, got, want)
		}
	}

	d := st.Snapshot().Sub(base)
	if d.DoubleLoggedOps < int64(len(suf)) {
		t.Fatalf("DoubleLoggedOps = %d, want >= %d", d.DoubleLoggedOps, len(suf))
	}
	if d.CutoverEpochs != 1 {
		t.Fatalf("CutoverEpochs = %d, want 1", d.CutoverEpochs)
	}
	if st.MigrationsActive.Load() != 0 {
		t.Fatalf("MigrationsActive = %d after Finish, want 0", st.MigrationsActive.Load())
	}

	// A fresh opener resolves ownership purely from the persisted map.
	conns2 := cell.connect(2)
	p2, err := OpenPartitioned(conns2, "el", false, Options{Create: testCreate, Buckets: 256})
	if err != nil {
		t.Fatal(err)
	}
	if h := p2.PartHandle(pi); h == nil || h.Conn().BackendID() != dst.BackendID() {
		t.Fatal("fresh opener does not route the migrated partition to the destination")
	}
	for k, want := range oracle {
		got, ok, err := p2.Get(k)
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("fresh opener key %d: ok=%v err=%v got=%q want=%q", k, ok, err, got, want)
		}
	}
}

// TestElasticReaderFenceFollowsCutover pins the epoch fence: a reader
// attached BEFORE a migration observes the cutover on its next routed
// operation — the meta slot SN bump makes it re-read the map and re-open
// the moved partition — and then reads post-cutover writes that only
// ever reached the destination.
func TestElasticReaderFenceFollowsCutover(t *testing.T) {
	cell := newMigCell(t, 2)
	const parts = 2
	p, err := CreateElastic(cell.conns, KindHashTable, "fence", parts, Options{Create: testCreate, Buckets: 256})
	if err != nil {
		t.Fatal(err)
	}
	const pi = 0
	k := migKeysFor(pi, parts, 1, 100)[0]
	if err := p.Put(k, val(1)); err != nil {
		t.Fatal(err)
	}
	if err := p.DrainAll(); err != nil {
		t.Fatal(err)
	}

	rconns := cell.connect(7)
	rp, err := OpenPartitioned(rconns, "fence", false, Options{Create: testCreate, Buckets: 256})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok, err := rp.Get(k); err != nil || !ok || !bytes.Equal(got, val(1)) {
		t.Fatalf("pre-migration read: ok=%v err=%v got=%q", ok, err, got)
	}
	oldConn := rp.PartHandle(pi).Conn()

	m, err := p.BeginMigration(pi, cell.conns[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.StreamSnapshot(); err != nil {
		t.Fatal(err)
	}
	if err := m.Cutover(); err != nil {
		t.Fatal(err)
	}
	if err := m.Finish(); err != nil {
		t.Fatal(err)
	}
	// This write exists ONLY on the destination.
	if err := p.Put(k, val(2)); err != nil {
		t.Fatal(err)
	}
	if err := p.DrainAll(); err != nil {
		t.Fatal(err)
	}

	got, ok, err := rp.Get(k)
	if err != nil || !ok || !bytes.Equal(got, val(2)) {
		t.Fatalf("post-cutover read through the fence: ok=%v err=%v got=%q want=%q", ok, err, got, val(2))
	}
	newConn := rp.PartHandle(pi).Conn()
	if newConn == oldConn {
		t.Fatal("reader fence did not re-open the moved partition")
	}
	if newConn.BackendID() != cell.conns[1].BackendID() {
		t.Fatalf("reader routed to back-end %d, want %d", newConn.BackendID(), cell.conns[1].BackendID())
	}
	if rp.Version() < 2 {
		t.Fatalf("reader map version %d, want >= 2 after cutover", rp.Version())
	}
}

// TestMigrationAbortAndGenerationProbe pins retry hygiene: an aborted
// handoff leaves its destination generation as orphaned garbage, and the
// next attempt's creation probe skips past it instead of colliding.
func TestMigrationAbortAndGenerationProbe(t *testing.T) {
	cell := newMigCell(t, 2)
	const parts = 2
	p, err := CreateElastic(cell.conns, KindHashTable, "probe", parts, Options{Create: testCreate, Buckets: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		if err := p.Put(uint64(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	const pi = 0
	m1, err := p.BeginMigration(pi, cell.conns[1])
	if err != nil {
		t.Fatal(err)
	}
	if m1.gen != 1 {
		t.Fatalf("first attempt generation %d, want 1", m1.gen)
	}
	if _, err := m1.StreamSnapshot(); err != nil {
		t.Fatal(err)
	}
	if err := m1.Abort(); err != nil {
		t.Fatal(err)
	}
	if p.Migrating() != -1 {
		t.Fatal("abort left a migration word")
	}
	// Writes after the abort must stop double-logging.
	if err := p.Put(2, val(999)); err != nil {
		t.Fatal(err)
	}

	m2, err := p.BeginMigration(pi, cell.conns[1])
	if err != nil {
		t.Fatal(err)
	}
	if m2.gen != 2 {
		t.Fatalf("retry generation %d, want 2 (probe past the orphan)", m2.gen)
	}
	if _, err := m2.StreamSnapshot(); err != nil {
		t.Fatal(err)
	}
	if err := m2.Cutover(); err != nil {
		t.Fatal(err)
	}
	if err := m2.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := p.DrainAll(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		want := val(i)
		if i == 2 {
			want = val(999)
		}
		got, ok, err := p.Get(uint64(i))
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("key %d after retry handoff: ok=%v err=%v got=%q", i, ok, err, got)
		}
	}
	// The abandoned generation-1 orphan must still be there (lazy
	// reclaim), distinct from the live generation-2 destination.
	if _, err := OpenHashTable(cell.conns[1], partName("probe", pi, 1), false, Options{Create: testCreate, Buckets: 256}); err != nil {
		t.Fatalf("orphan generation missing: %v", err)
	}
}

// TestStripedReHome migrates a whole striped structure to another
// back-end: history streams per stripe, the double-log window covers
// live writes, and the cutover stamp redirects later opens of the source
// with core.ErrMoved.
func TestStripedReHome(t *testing.T) {
	cell := newMigCell(t, 2)
	s, err := CreateStriped(cell.conns[0], KindHashTable, "sh", 4, Options{Create: testCreate, Buckets: 256})
	if err != nil {
		t.Fatal(err)
	}
	oracle := map[uint64][]byte{}
	for i := 1; i <= 120; i++ {
		k := uint64(i * 2654435761)
		if err := s.Put(k, val(i)); err != nil {
			t.Fatal(err)
		}
		oracle[k] = val(i)
	}

	m, err := s.BeginMigration(cell.conns[1])
	if err != nil {
		t.Fatal(err)
	}
	n, err := m.StreamSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("snapshot streamed zero ops")
	}
	// Live suffix, double-logged to both homes.
	for i := 1; i <= 20; i++ {
		k := uint64(9_000_000 + i)
		if err := s.Put(k, val(7000+i)); err != nil {
			t.Fatal(err)
		}
		oracle[k] = val(7000 + i)
	}
	if err := m.Cutover(); err != nil {
		t.Fatal(err)
	}
	if err := m.Finish(); err != nil {
		t.Fatal(err)
	}

	// The superseded source refuses operations and redirects fresh opens.
	if _, _, err := s.Get(1); !errors.Is(err, core.ErrMoved) {
		t.Fatalf("moved source Get error = %v, want ErrMoved", err)
	}
	if err := s.Put(1, val(1)); !errors.Is(err, core.ErrMoved) {
		t.Fatalf("moved source Put error = %v, want ErrMoved", err)
	}
	if _, err := OpenStriped(cell.conns[0], "sh", false, Options{Create: testCreate, Buckets: 256}); !errors.Is(err, core.ErrMoved) {
		t.Fatalf("open of moved source = %v, want ErrMoved", err)
	}

	// The destination is the live instance, with every committed write.
	d := m.Dst()
	for k, want := range oracle {
		got, ok, err := d.Get(k)
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("destination key %d: ok=%v err=%v got=%q want=%q", k, ok, err, got, want)
		}
	}
	// A fresh front-end finds it under the same name at the new home.
	conns2 := cell.connect(3)
	d2, err := OpenStriped(conns2[1], "sh", false, Options{Create: testCreate, Buckets: 256})
	if err != nil {
		t.Fatal(err)
	}
	probe := uint64(2654435761)
	if got, ok, err := d2.Get(probe); err != nil || !ok || !bytes.Equal(got, oracle[probe]) {
		t.Fatalf("re-homed open get: ok=%v err=%v got=%q", ok, err, got)
	}
}

var _ = fmt.Sprintf // keep fmt linked for debug edits
