package ds

import (
	"encoding/binary"
	"fmt"

	"asymnvm/internal/backend"
	"asymnvm/internal/core"
)

// Partitioning (§8.3): a structure is split into P independent instances
// by key hash, each with its own writer lock, seqlock and log areas —
// possibly on different back-ends — eliminating the single-lock
// bottleneck and letting a writer in one partition proceed while readers
// work in others. The partition count is persisted in a naming-table
// meta entry (the "mapping table between key range and partition ...
// stored in the global naming space"); partition i lives under the name
// "<name>#<i>" on back-end conns[i % len(conns)].

// Partitioned routes KV operations to per-partition instances.
type Partitioned struct {
	parts []KV
	meta  *core.Handle
}

// partIndex hashes a key to a partition.
func partIndex(key uint64, n int) int {
	return int((key * 0x9E3779B97F4A7C15) >> 33 % uint64(n))
}

// Put routes to the owning partition.
func (p *Partitioned) Put(key uint64, val []byte) error {
	return p.parts[partIndex(key, len(p.parts))].Put(key, val)
}

// Get routes to the owning partition.
func (p *Partitioned) Get(key uint64) ([]byte, bool, error) {
	return p.parts[partIndex(key, len(p.parts))].Get(key)
}

// Flush flushes every partition.
func (p *Partitioned) Flush() error {
	for _, part := range p.parts {
		if err := part.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Parts exposes the partition instances (benchmarks address them
// individually for the multi-back-end scaling figure).
func (p *Partitioned) Parts() []KV { return p.parts }

// KVKind selects the structure type backing each partition.
type KVKind int

// Partitionable structure kinds.
const (
	KindBST KVKind = iota
	KindBPTree
	KindSkipList
	KindHashTable
	KindMVBST
	KindMVBPTree
)

// createKV builds one instance of the requested kind.
func createKV(c *core.Conn, kind KVKind, name string, opts Options) (KV, error) {
	switch kind {
	case KindBST:
		return CreateBST(c, name, opts)
	case KindBPTree:
		return CreateBPTree(c, name, opts)
	case KindSkipList:
		return CreateSkipList(c, name, opts)
	case KindHashTable:
		return CreateHashTable(c, name, opts)
	case KindMVBST:
		return CreateMVBST(c, name, opts)
	case KindMVBPTree:
		return CreateMVBPTree(c, name, opts)
	default:
		return nil, fmt.Errorf("ds: unknown kind %d", kind)
	}
}

// openKV opens one instance of the requested kind.
func openKV(c *core.Conn, kind KVKind, name string, writer bool, opts Options) (KV, error) {
	switch kind {
	case KindBST:
		return OpenBST(c, name, writer, opts)
	case KindBPTree:
		return OpenBPTree(c, name, writer, opts)
	case KindSkipList:
		return OpenSkipList(c, name, writer, opts)
	case KindHashTable:
		return OpenHashTable(c, name, writer, opts)
	case KindMVBST:
		return OpenMVBST(c, name, writer, opts)
	case KindMVBPTree:
		return OpenMVBPTree(c, name, writer, opts)
	default:
		return nil, fmt.Errorf("ds: unknown kind %d", kind)
	}
}

// CreatePartitioned creates P partitions of the given kind, spread
// round-robin across the provided back-end connections, and records the
// mapping in a meta entry on conns[0].
func CreatePartitioned(conns []*core.Conn, kind KVKind, name string, parts int, opts Options) (*Partitioned, error) {
	if parts <= 0 || len(conns) == 0 {
		return nil, fmt.Errorf("ds: bad partition config (parts=%d conns=%d)", parts, len(conns))
	}
	meta, err := conns[0].Create(name, backend.TypeApp, core.CreateOptions{MemLogSize: 64 << 10, OpLogSize: 64 << 10})
	if err != nil {
		return nil, err
	}
	// Persist {kind, parts} in the meta aux user area through the log
	// path so mirrors see the mapping table.
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(kind))
	binary.LittleEndian.PutUint64(b[8:], uint64(parts))
	if err := meta.Write(meta.AuxAddr()+backend.AuxUser, b[:]); err != nil {
		return nil, err
	}
	if err := meta.Flush(); err != nil {
		return nil, err
	}
	p := &Partitioned{meta: meta}
	for i := 0; i < parts; i++ {
		c := conns[i%len(conns)]
		part, err := createKV(c, kind, fmt.Sprintf("%s#%d", name, i), opts)
		if err != nil {
			return nil, err
		}
		p.parts = append(p.parts, part)
	}
	return p, nil
}

// OpenPartitioned reads the mapping meta entry and opens every partition.
func OpenPartitioned(conns []*core.Conn, name string, writer bool, opts Options) (*Partitioned, error) {
	meta, err := conns[0].Open(name, false)
	if err != nil {
		return nil, err
	}
	mb, err := meta.Read(meta.AuxAddr()+backend.AuxUser, 16, false)
	if err != nil {
		return nil, err
	}
	kind := KVKind(binary.LittleEndian.Uint64(mb[:8]))
	parts := int(binary.LittleEndian.Uint64(mb[8:]))
	if parts <= 0 || parts > 1<<16 {
		return nil, fmt.Errorf("ds: corrupt partition meta (parts=%d)", parts)
	}
	p := &Partitioned{meta: meta}
	for i := 0; i < parts; i++ {
		c := conns[i%len(conns)]
		part, err := openKV(c, kind, fmt.Sprintf("%s#%d", name, i), writer, opts)
		if err != nil {
			return nil, err
		}
		p.parts = append(p.parts, part)
	}
	return p, nil
}
