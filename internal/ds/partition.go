package ds

import (
	"encoding/binary"
	"fmt"

	"asymnvm/internal/backend"
	"asymnvm/internal/core"
)

// Partitioning (§8.3): a structure is split into P independent instances
// by key hash, each with its own writer lock, seqlock and log areas —
// possibly on different back-ends — eliminating the single-lock
// bottleneck and letting a writer in one partition proceed while readers
// work in others. The partition count is persisted in a naming-table
// meta entry (the "mapping table between key range and partition ...
// stored in the global naming space"); partition i lives by default under
// the name "<name>#<i>" on back-end conns[i % len(conns)].
//
// The mapping table is versioned (see migrate.go): an elastic structure's
// meta entry additionally records a map version, a per-partition owner
// word (connection index + child-name generation) and an in-flight
// migration word, so partitions can be re-homed to other back-ends while
// writers keep committing. Readers of a versioned map fence each routed
// operation on the meta slot's seqlock sequence number: a cutover bumps
// it, and the next routed operation re-reads the map and re-opens any
// moved partition before proceeding (the retry-on-moved path).

// Partitioned routes KV operations to per-partition instances.
type Partitioned struct {
	parts  []KV
	meta   *core.Handle
	conns  []*core.Conn
	kind   KVKind
	name   string
	opts   Options
	writer bool

	// Versioned-map state (zero for legacy static maps).
	version uint64
	owners  []uint16 // wire owner words; see ownerOf
	metaSN  uint64   // meta seqlock SN at the last map read (the fence)
	migw    uint64   // persisted migration word mirror (writer side)

	// Double-log window (writer side): once the snapshot stream lands,
	// the partition being handed off and its destination instance —
	// every committed write goes to both until cutover.
	migPart int
	migDst  KV
}

// partIndex hashes a key to a partition.
func partIndex(key uint64, n int) int {
	return int((key * 0x9E3779B97F4A7C15) >> 33 % uint64(n))
}

// Put routes to the owning partition. During a handoff's double-log
// window the destination receives every committed write too, so the
// streamed snapshot plus this live suffix is complete at cutover.
func (p *Partitioned) Put(key uint64, val []byte) error {
	if err := p.fence(); err != nil {
		return err
	}
	pi := partIndex(key, len(p.parts))
	if err := p.parts[pi].Put(key, val); err != nil {
		return err
	}
	if p.migDst != nil && pi == p.migPart {
		if err := p.migDst.Put(key, val); err != nil {
			return fmt.Errorf("ds: double-log to migration destination: %w", err)
		}
		p.meta.Conn().Frontend().Stats().DoubleLoggedOps.Add(1)
	}
	return nil
}

// Get routes to the owning partition. Reads stay on the source until
// cutover — it is authoritative for the whole double-log window.
func (p *Partitioned) Get(key uint64) ([]byte, bool, error) {
	if err := p.fence(); err != nil {
		return nil, false, err
	}
	return p.parts[partIndex(key, len(p.parts))].Get(key)
}

// Flush flushes every partition.
func (p *Partitioned) Flush() error {
	for _, part := range p.parts {
		if err := part.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Parts exposes the partition instances (benchmarks address them
// individually for the multi-back-end scaling figure).
func (p *Partitioned) Parts() []KV { return p.parts }

// GetMulti looks up a batch of keys across partitions. Keys are bucketed
// by owning partition; partitions with a native batched lookup advance
// their multi-get walkers in lockstep inside one fan-out window — each
// round posts one doorbell group per involved back-end before settling
// any of them, so the window costs max-over-backends instead of
// sum-over-backends. A partition whose seqlock validation fails afterward
// is re-run through its own retrying GetMulti; kinds without a walker
// fall back to per-key routing. Results index-match keys.
func (p *Partitioned) GetMulti(keys []uint64) ([][]byte, []bool, error) {
	if err := p.fence(); err != nil {
		return nil, nil, err
	}
	n := len(p.parts)
	vals := make([][]byte, len(keys))
	found := make([]bool, len(keys))
	if len(keys) == 0 {
		return vals, found, nil
	}
	groups := make([][]uint64, n)
	orig := make([][]int, n)
	for i, k := range keys {
		pi := partIndex(k, n)
		groups[pi] = append(groups[pi], k)
		orig[pi] = append(orig[pi], i)
	}
	type shard struct {
		pi     int
		mkv    multiKV
		h      *core.Handle
		w      getWalker
		vals   [][]byte
		found  []bool
		pend   *core.PendingReads
		active bool
		locked bool // seqlock held: must validate after the walk
	}
	var shards []*shard
	var fallback []int
	for pi := 0; pi < n; pi++ {
		if len(groups[pi]) == 0 {
			continue
		}
		mkv, ok := p.parts[pi].(multiKV)
		if !ok {
			fallback = append(fallback, pi)
			continue
		}
		shards = append(shards, &shard{
			pi: pi, mkv: mkv, h: mkv.Handle(),
			vals:  make([][]byte, len(groups[pi])),
			found: make([]bool, len(groups[pi])),
		})
	}
	if len(shards) > 0 {
		fe := shards[0].h.Conn().Frontend()
		fe.ChargeOp()
		conns := make([]*core.Conn, 0, len(shards))
		for _, s := range shards {
			conns = append(conns, s.h.Conn())
		}
		fan := fe.BeginFanout(conns...)
		runErr := func() error {
			for _, s := range shards {
				if !s.h.IsWriter() {
					if err := s.h.ReaderLock(); err != nil {
						return err
					}
					s.locked = s.mkv.readValidate()
				}
				s.w = s.mkv.newGetWalker(groups[s.pi], s.vals, s.found)
				s.active = true
			}
			for {
				live := false
				// Post one fetch round per active shard…
				for _, s := range shards {
					if !s.active {
						continue
					}
					req, ok := s.w.next()
					if !ok {
						s.active = false
						continue
					}
					pend, err := s.h.PostReadMulti(req.addrs, req.unit, req.cacheable)
					if err != nil {
						return err
					}
					s.pend = pend
					live = true
				}
				if !live {
					return nil
				}
				// …then settle and absorb them, so the groups on the
				// different links fly concurrently.
				for _, s := range shards {
					if s.pend == nil {
						continue
					}
					bufs, err := s.pend.Settle()
					s.pend = nil
					if err != nil {
						return err
					}
					if err := s.w.absorb(bufs); err != nil {
						return err
					}
				}
			}
		}()
		fan.End()
		if runErr != nil {
			return nil, nil, runErr
		}
		for _, s := range shards {
			okv := true
			if s.locked {
				var err error
				okv, err = s.h.ReaderValidate()
				if err != nil {
					return nil, nil, err
				}
			}
			if !okv {
				// Torn by a concurrent commit: re-run this partition
				// through its own retrying multi-get.
				pv, pf, err := s.mkv.GetMulti(groups[s.pi])
				if err != nil {
					return nil, nil, err
				}
				s.vals, s.found = pv, pf
			}
			for j, oi := range orig[s.pi] {
				vals[oi], found[oi] = s.vals[j], s.found[j]
			}
		}
	}
	for _, pi := range fallback {
		for j, k := range groups[pi] {
			v, ok, err := p.parts[pi].Get(k)
			if err != nil {
				return nil, nil, err
			}
			vals[orig[pi][j]], found[orig[pi][j]] = v, ok
		}
	}
	return vals, found, nil
}

// PutMulti routes each pair to its owning partition. Writes ride the
// normal per-partition batching machinery; call FlushAll at a batch
// boundary to commit every partition in one fan-out window.
func (p *Partitioned) PutMulti(keys []uint64, vals [][]byte) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("ds: put multi length mismatch (%d keys, %d values)", len(keys), len(vals))
	}
	for i, k := range keys {
		// Route through Put so the double-log window covers batches too.
		if err := p.Put(k, vals[i]); err != nil {
			return err
		}
	}
	return nil
}

// FlushAll commits every partition's batch buffers inside one fan-out
// window: each partition's op-log group and tx record are posted on its
// back-end before any of them is settled, so a P-partition commit over K
// back-ends costs max-over-backends instead of P serial flushes.
func (p *Partitioned) FlushAll() error {
	var hs []*core.Handle
	var conns []*core.Conn
	var plain []KV
	for _, part := range p.parts {
		if hp, ok := part.(handled); ok {
			h := hp.Handle()
			hs = append(hs, h)
			conns = append(conns, h.Conn())
		} else {
			plain = append(plain, part)
		}
	}
	if len(hs) > 0 {
		fe := hs[0].Conn().Frontend()
		fan := fe.BeginFanout(conns...)
		pfs := make([]*core.PendingFlush, 0, len(hs))
		var firstErr error
		for _, h := range hs {
			pf, err := h.FlushAsync()
			if err != nil {
				firstErr = err
				break
			}
			pfs = append(pfs, pf)
		}
		for _, pf := range pfs {
			if err := pf.Settle(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		fan.End()
		if firstErr != nil {
			return firstErr
		}
	}
	for _, part := range plain {
		if err := part.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// DrainAll flushes every partition (overlapped) and waits until each
// back-end's replayer has applied the logs.
func (p *Partitioned) DrainAll() error {
	if err := p.FlushAll(); err != nil {
		return err
	}
	for _, part := range p.parts {
		if hp, ok := part.(handled); ok {
			if err := hp.Handle().Drain(); err != nil {
				return err
			}
		}
	}
	return nil
}

// PartIndex exposes the key-to-partition routing (transaction code needs
// to know when an operation crosses partitions).
func (p *Partitioned) PartIndex(key uint64) int { return partIndex(key, len(p.parts)) }

// PartHandle returns partition pi's handle, or nil when that kind does
// not expose one.
func (p *Partitioned) PartHandle(pi int) *core.Handle {
	if hp, ok := p.parts[pi].(handled); ok {
		return hp.Handle()
	}
	return nil
}

// TxHandles returns every partition's handle, for cross-shard
// enrollment or recovery.
func (p *Partitioned) TxHandles() []*core.Handle {
	hs := make([]*core.Handle, 0, len(p.parts))
	for _, part := range p.parts {
		if hp, ok := part.(handled); ok {
			hs = append(hs, hp.Handle())
		}
	}
	return hs
}

// TxPutMulti writes the batch atomically across partitions as ONE
// cross-shard transaction under tc (§8.3 partitioning composed with the
// 2PC plane): the owning partitions enroll, every put buffers into its
// partition's logs, and Commit drives prepare/commit/decide. Either all
// pairs become durable or none do.
func (p *Partitioned) TxPutMulti(tc *core.TxCoordinator, keys []uint64, vals [][]byte) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("ds: tx put multi length mismatch (%d keys, %d values)", len(keys), len(vals))
	}
	if p.migw != 0 {
		// Cross-shard records do not migrate (HistoryOps refuses a log
		// holding them — replaying could resurrect an aborted half), so
		// the 2PC surface pauses for the duration of a handoff.
		return fmt.Errorf("ds: cross-shard transactions are paused while a partition migrates")
	}
	if len(keys) == 0 {
		return nil
	}
	tx, err := tc.Begin()
	if err != nil {
		return err
	}
	enrolled := make(map[int]bool, len(p.parts))
	for _, k := range keys {
		pi := partIndex(k, len(p.parts))
		if enrolled[pi] {
			continue
		}
		hp, ok := p.parts[pi].(handled)
		if !ok {
			tx.Abort()
			return fmt.Errorf("ds: partition %d kind cannot join transactions", pi)
		}
		if err := tx.Enroll(hp.Handle()); err != nil {
			tx.Abort()
			return err
		}
		enrolled[pi] = true
	}
	for i, k := range keys {
		if err := p.parts[partIndex(k, len(p.parts))].Put(k, vals[i]); err != nil {
			tx.Abort()
			return err
		}
	}
	return tx.Commit()
}

// TxRecover resolves this structure's cross-shard in-doubt state against
// tc's coordinator (presumed abort). Run it on a fresh writer before any
// PendingOps-based re-execution: resolution advances the op cursor past
// the transactions it settles.
func (p *Partitioned) TxRecover(tc *core.TxCoordinator) (committed, aborted int, err error) {
	return tc.RecoverTx(p.TxHandles()...)
}

// KVKind selects the structure type backing each partition.
type KVKind int

// Partitionable structure kinds.
const (
	KindBST KVKind = iota
	KindBPTree
	KindSkipList
	KindHashTable
	KindMVBST
	KindMVBPTree
)

// createKV builds one instance of the requested kind.
func createKV(c *core.Conn, kind KVKind, name string, opts Options) (KV, error) {
	switch kind {
	case KindBST:
		return CreateBST(c, name, opts)
	case KindBPTree:
		return CreateBPTree(c, name, opts)
	case KindSkipList:
		return CreateSkipList(c, name, opts)
	case KindHashTable:
		return CreateHashTable(c, name, opts)
	case KindMVBST:
		return CreateMVBST(c, name, opts)
	case KindMVBPTree:
		return CreateMVBPTree(c, name, opts)
	default:
		return nil, fmt.Errorf("ds: unknown kind %d", kind)
	}
}

// openKV opens one instance of the requested kind.
func openKV(c *core.Conn, kind KVKind, name string, writer bool, opts Options) (KV, error) {
	switch kind {
	case KindBST:
		return OpenBST(c, name, writer, opts)
	case KindBPTree:
		return OpenBPTree(c, name, writer, opts)
	case KindSkipList:
		return OpenSkipList(c, name, writer, opts)
	case KindHashTable:
		return OpenHashTable(c, name, writer, opts)
	case KindMVBST:
		return OpenMVBST(c, name, writer, opts)
	case KindMVBPTree:
		return OpenMVBPTree(c, name, writer, opts)
	default:
		return nil, fmt.Errorf("ds: unknown kind %d", kind)
	}
}

// CreatePartitioned creates P partitions of the given kind, spread
// round-robin across the provided back-end connections, and records the
// mapping in a meta entry on conns[0].
func CreatePartitioned(conns []*core.Conn, kind KVKind, name string, parts int, opts Options) (*Partitioned, error) {
	if parts <= 0 || len(conns) == 0 {
		return nil, fmt.Errorf("ds: bad partition config (parts=%d conns=%d)", parts, len(conns))
	}
	meta, err := conns[0].Create(name, backend.TypeApp, core.CreateOptions{MemLogSize: 64 << 10, OpLogSize: 64 << 10})
	if err != nil {
		return nil, err
	}
	// Persist {kind, parts} in the meta aux user area through the log
	// path so mirrors see the mapping table.
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(kind))
	binary.LittleEndian.PutUint64(b[8:], uint64(parts))
	if err := meta.Write(meta.AuxAddr()+backend.AuxUser, b[:]); err != nil {
		return nil, err
	}
	if err := meta.Flush(); err != nil {
		return nil, err
	}
	p := &Partitioned{meta: meta, conns: conns, kind: kind, name: name, opts: opts, writer: true, migPart: -1}
	for i := 0; i < parts; i++ {
		c := conns[i%len(conns)]
		part, err := createKV(c, kind, partName(name, i, 0), opts)
		if err != nil {
			return nil, err
		}
		p.parts = append(p.parts, part)
	}
	return p, nil
}

// OpenPartitioned reads the mapping meta entry and opens every partition
// at its current owner. On a versioned map the meta slot SN is sampled
// BEFORE the map read, so a cutover racing the open is caught by the
// first routed operation's fence rather than missed.
func OpenPartitioned(conns []*core.Conn, name string, writer bool, opts Options) (*Partitioned, error) {
	meta, err := conns[0].Open(name, false)
	if err != nil {
		return nil, err
	}
	sn, err := meta.Conn().SlotSN(meta.Slot())
	if err != nil {
		return nil, err
	}
	pm, err := readPartMap(meta)
	if err != nil {
		return nil, err
	}
	p := &Partitioned{
		meta: meta, conns: conns, kind: pm.kind, name: name, opts: opts, writer: writer,
		version: pm.version, owners: pm.owners, metaSN: sn, migw: pm.mig, migPart: -1,
	}
	for i := 0; i < pm.parts; i++ {
		ci, gen := ownerOf(pm.owners, i, len(conns))
		if ci >= len(conns) {
			return nil, fmt.Errorf("ds: partition %d owned by connection %d, only %d attached: %w",
				i, ci, len(conns), core.ErrMoved)
		}
		part, err := openKV(conns[ci], pm.kind, partName(name, i, gen), writer, opts)
		if err != nil {
			return nil, err
		}
		p.parts = append(p.parts, part)
	}
	return p, nil
}
