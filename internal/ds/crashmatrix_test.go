package ds

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"asymnvm/internal/backend"
	"asymnvm/internal/core"
	"asymnvm/internal/nvm"
	"asymnvm/internal/rdma"
	"asymnvm/internal/trace"
)

// The crash-point matrix: for every data structure, enumerate the
// persistence steps (write-class verbs: RDMA writes, 8-byte stores,
// atomics) of one probe operation, then crash the back-end at each step
// in turn — power failure included, with the probe's k-th write verb torn
// mid-transfer — recover, and assert the structure-specific invariants:
//
//   - everything drained before the probe survives byte-for-byte;
//   - the probe operation is all-or-nothing (present with the exact
//     value, or absent — never mangled);
//   - ordering invariants hold (LIFO pops, FIFO dequeues, sorted scans).
//
// The verb enumeration leans on the fault hook seeing the identical
// deterministic verb sequence (zero-cost profile, batch 1, no pipeline)
// that a fresh identically-seeded instance produces.

// crashCase describes one structure's row in the matrix.
type crashCase struct {
	name  string
	build func(t *testing.T, c *core.Conn) func() error // create+seed+drain; returns the probe op
	check func(t *testing.T, c *core.Conn)               // reopen as writer, drain, verify invariants
}

// writeClass reports whether a verb persists state on the back-end.
func writeClass(op rdma.Op) bool {
	switch op {
	case rdma.OpWrite, rdma.OpStore64, rdma.OpCAS, rdma.OpFetchAdd:
		return true
	}
	return false
}

func crashOpts() Options {
	return Options{Create: testCreate, Buckets: 256}
}

// newCrashCell builds a fresh device+back-end+writer front-end. tr may
// be nil (only the counting pass traces).
func newCrashCell(t *testing.T, tr *trace.Tracer) (*nvm.Device, *backend.Backend, *core.Conn) {
	t.Helper()
	dev := nvm.NewDevice(64 << 20)
	bk, err := backend.New(dev, backend.Options{ID: 0, Profile: &zprof})
	if err != nil {
		t.Fatal(err)
	}
	bk.Start()
	fe := core.NewFrontend(core.FrontendOptions{ID: 1, Mode: core.ModeR(), Profile: &zprof, Tracer: tr})
	conn, err := fe.Connect(bk)
	if err != nil {
		bk.Stop()
		t.Fatal(err)
	}
	return dev, bk, conn
}

// countProbeVerbs runs the probe on a throwaway traced instance and
// counts its write-class verbs — the number of crash points to exercise.
// The fault-hook count is cross-checked against the trace's span ledger:
// both enumerate the same persistence steps.
func countProbeVerbs(t *testing.T, tc crashCase) int {
	t.Helper()
	tr := trace.New()
	_, bk, conn := newCrashCell(t, tr)
	defer bk.Stop()
	probe := tc.build(t, conn)
	atr := conn.Frontend().Tracer()
	preSpans := len(atr.Spans())
	// n counts only write-class verbs (the crash points); spanEquiv also
	// counts read-only atomics (Load64), which trace as KindVerbAtomic
	// spans just like the write-class ones do.
	n, spanEquiv := 0, 0
	conn.Endpoint().SetFault(func(op rdma.Op, off uint64, sz int) rdma.Fault {
		if writeClass(op) {
			n++
		}
		switch op {
		case rdma.OpWrite, rdma.OpStore64, rdma.OpCAS, rdma.OpFetchAdd, rdma.OpLoad64:
			spanEquiv++
		}
		return rdma.Fault{}
	})
	if err := probe(); err != nil {
		t.Fatalf("counting pass probe failed: %v", err)
	}
	conn.Endpoint().SetFault(nil)
	var spanWrites int
	for _, sp := range atr.Spans()[preSpans:] {
		switch sp.Kind {
		case trace.KindVerbWrite, trace.KindVerbAtomic:
			spanWrites++
		}
	}
	if spanWrites != spanEquiv {
		t.Fatalf("trace recorded %d write/atomic verb spans during the probe, fault hook saw %d matching verbs", spanWrites, spanEquiv)
	}
	return n
}

// runCrashPoint rebuilds the cell, kills the connection at the probe's
// k-th write-class verb (torn mid-transfer for bulk writes), power-fails
// the device, recovers, and verifies.
func runCrashPoint(t *testing.T, tc crashCase, k int) {
	t.Helper()
	dev, bk, conn := newCrashCell(t, nil)
	stopped := false
	defer func() {
		if !stopped {
			bk.Stop()
		}
	}()
	probe := tc.build(t, conn)
	seen := 0
	dead := false
	conn.Endpoint().SetFault(func(op rdma.Op, off uint64, sz int) rdma.Fault {
		if dead {
			// A disconnected front-end stays disconnected: every later verb
			// of the dying operation fails too, so a path that tolerates one
			// lost advisory write (e.g. tail hints) still can't limp through.
			return rdma.Fault{Err: rdma.ErrDisconnected}
		}
		if !writeClass(op) {
			return rdma.Fault{}
		}
		seen++
		if seen != k {
			return rdma.Fault{}
		}
		dead = true
		f := rdma.Fault{Err: rdma.ErrDisconnected}
		if op == rdma.OpWrite {
			f.Truncate = sz / 2 // the dying write reaches the device torn
		}
		return f
	})
	if err := probe(); err == nil {
		t.Fatalf("crash point %d: probe succeeded despite fatal fault", k)
	} else if !errors.Is(err, rdma.ErrDisconnected) {
		t.Fatalf("crash point %d: probe failed with %v, want ErrDisconnected", k, err)
	}

	// The node dies with the connection: stop it and lose volatile bytes.
	bk.Stop()
	stopped = true
	dev.Crash(nil)

	bk2, err := backend.New(dev, backend.Options{ID: 0, Profile: &zprof})
	if err != nil {
		t.Fatalf("crash point %d: recovery: %v", k, err)
	}
	bk2.Start()
	defer bk2.Stop()
	fe2 := core.NewFrontend(core.FrontendOptions{ID: 2, Mode: core.ModeR(), Profile: &zprof})
	conn2, err := fe2.Connect(bk2)
	if err != nil {
		t.Fatalf("crash point %d: reconnect: %v", k, err)
	}
	raw, err := conn2.Open(tc.name, true)
	if err != nil {
		t.Fatalf("crash point %d: raw open: %v", k, err)
	}
	if err := raw.BreakLock(1); err != nil {
		t.Fatalf("crash point %d: break lock: %v", k, err)
	}
	tc.check(t, conn2)
}

func TestCrashPointMatrix(t *testing.T) {
	cases := []crashCase{
		stackCrashCase(),
		queueCrashCase(),
		kvCrashCase("HashTable"),
		kvCrashCase("SkipList"),
		kvCrashCase("BST"),
		kvCrashCase("BPTree"),
		kvCrashCase("MVBST"),
		kvCrashCase("MVBPTree"),
		partitionedCrashCase(),
		stripedCrashCase(),
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			n := countProbeVerbs(t, tc)
			if n == 0 {
				t.Fatal("probe issued no write-class verbs; nothing to crash")
			}
			for k := 1; k <= n; k++ {
				runCrashPoint(t, tc, k)
			}
			t.Logf("%s: %d crash points survived", tc.name, n)
		})
	}
}

// ---- truncation-phase rows (compaction plane) ----
//
// With compaction on, the back-end's crash surface gains phases of its
// own: lazily applied entries that were never checkpointed, a torn
// checkpoint record in either of the two slots, and a crash between
// reclaiming dead log pages and advancing the truncation points. Each
// phase is exercised against the same per-structure invariants as the
// verb matrix: seeds survive byte-for-byte, the probe operation stays
// all-or-nothing, ordering invariants hold.

// newCompactCell builds a device+back-end+writer cell with compaction on.
func newCompactCell(t *testing.T, interval uint64, hook func(backend.CkptEvent) backend.CkptAction) (*nvm.Device, *backend.Backend, *core.Conn) {
	t.Helper()
	dev := nvm.NewDevice(64 << 20)
	bk, err := backend.New(dev, backend.Options{ID: 0, Profile: &zprof,
		Compact: &backend.CompactConfig{Interval: interval}, CheckpointHook: hook})
	if err != nil {
		t.Fatal(err)
	}
	bk.Start()
	fe := core.NewFrontend(core.FrontendOptions{ID: 1, Mode: core.ModeR(), Profile: &zprof})
	conn, err := fe.Connect(bk)
	if err != nil {
		bk.Stop()
		t.Fatal(err)
	}
	return dev, bk, conn
}

// recoverCompactCell power-fails dev (reverting the volatile window in
// rng order), recovers a fresh compacting back-end on it, and runs the
// row's invariant check through a new writer front-end.
func recoverCompactCell(t *testing.T, dev *nvm.Device, bk *backend.Backend, tc crashCase, rng *rand.Rand) {
	t.Helper()
	bk.Halt()
	dev.Crash(rng)
	bk2, err := backend.New(dev, backend.Options{ID: 0, Profile: &zprof,
		Compact: &backend.CompactConfig{Interval: 4 << 10}})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	bk2.Start()
	defer bk2.Stop()
	fe2 := core.NewFrontend(core.FrontendOptions{ID: 2, Mode: core.ModeR(), Profile: &zprof})
	conn2, err := fe2.Connect(bk2)
	if err != nil {
		t.Fatalf("reconnect: %v", err)
	}
	raw, err := conn2.Open(tc.name, true)
	if err != nil {
		t.Fatalf("raw open: %v", err)
	}
	if err := raw.BreakLock(1); err != nil {
		t.Fatalf("break lock: %v", err)
	}
	tc.check(t, conn2)
}

// TestTruncationCrashMidApply power-fails every structure while its probe
// sits lazily applied but never checkpointed: the whole volatile window
// (applied entries, volatile cursors) reverts in random order, and
// recovery must rebuild the state from the untouched log alone.
func TestTruncationCrashMidApply(t *testing.T) {
	cases := []crashCase{
		stackCrashCase(),
		queueCrashCase(),
		kvCrashCase("HashTable"),
		kvCrashCase("SkipList"),
		kvCrashCase("BST"),
		kvCrashCase("BPTree"),
		kvCrashCase("MVBST"),
		kvCrashCase("MVBPTree"),
		partitionedCrashCase(),
		stripedCrashCase(),
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			// An unreachable interval: nothing ever checkpoints, so every
			// application stays in the device's volatile window.
			dev, bk, conn := newCompactCell(t, 1<<30, nil)
			probe := tc.build(t, conn)
			if err := probe(); err != nil {
				t.Fatalf("probe: %v", err)
			}
			recoverCompactCell(t, dev, bk, tc, rand.New(rand.NewSource(42)))
		})
	}
}

// TestTruncationCrashCheckpointPhases tears the checkpoint procedure
// itself: mid-record-write into each of the two slots (the torn record
// must be rejected and the older slot win), and mid-reclaim (pages
// scrubbed under a record whose truncation points never advanced). Rows
// are limited to structures whose probe can repeat idempotently — the
// repeats force fresh replay progress until a checkpoint of the wanted
// slot parity fires.
func TestTruncationCrashCheckpointPhases(t *testing.T) {
	phases := []struct {
		name   string
		phase  backend.CkptPhase
		parity uint64
	}{
		{"write-slotA", backend.CkptPhaseWrite, 0},
		{"write-slotB", backend.CkptPhaseWrite, 1},
		{"reclaim", backend.CkptPhaseReclaim, 0},
	}
	cases := []crashCase{
		kvCrashCase("HashTable"),
		kvCrashCase("SkipList"),
		kvCrashCase("BST"),
		kvCrashCase("BPTree"),
		kvCrashCase("MVBST"),
		kvCrashCase("MVBPTree"),
		partitionedCrashCase(),
		stripedCrashCase(),
	}
	for _, ph := range phases {
		ph := ph
		t.Run(ph.name, func(t *testing.T) {
			for _, tc := range cases {
				tc := tc
				t.Run(tc.name, func(t *testing.T) {
					var armed, fired atomic.Bool
					hook := func(ev backend.CkptEvent) backend.CkptAction {
						if !armed.Load() || fired.Load() {
							return backend.CkptProceed
						}
						if ev.Phase != ph.phase || ev.Seq%2 != ph.parity {
							return backend.CkptProceed
						}
						fired.Store(true)
						return backend.CkptCrash
					}
					// Interval 1: any applied progress triggers a
					// checkpoint attempt on the next kick.
					dev, bk, conn := newCompactCell(t, 1, hook)
					probe := tc.build(t, conn)
					armed.Store(true)
					for i := 0; i < 200 && !fired.Load(); i++ {
						if err := probe(); err != nil {
							t.Fatalf("probe repeat %d: %v", i, err)
						}
						time.Sleep(2 * time.Millisecond)
					}
					if !fired.Load() {
						t.Fatalf("no %s checkpoint with seq parity %d fired within the probe budget", ph.name, ph.parity)
					}
					recoverCompactCell(t, dev, bk, tc, rand.New(rand.NewSource(43)))
				})
			}
		})
	}
}

// ---- per-structure rows ----

const crashSeedItems = 5

func crashVal(i int) []byte { return []byte(fmt.Sprintf("seed-%03d", i)) }

var probeVal = []byte("probe-value-xyz")

func stackCrashCase() crashCase {
	return crashCase{
		name: "Stack",
		build: func(t *testing.T, c *core.Conn) func() error {
			s, err := CreateStack(c, "Stack", crashOpts())
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= crashSeedItems; i++ {
				if err := s.Push(crashVal(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Drain(); err != nil {
				t.Fatal(err)
			}
			return func() error { return s.Push(probeVal) }
		},
		check: func(t *testing.T, c *core.Conn) {
			s, err := OpenStack(c, "Stack", crashOpts())
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			if err := s.Drain(); err != nil {
				t.Fatalf("drain: %v", err)
			}
			// LIFO: an optional probe value on top, then the seeds in
			// strict reverse push order, then empty.
			top, ok, err := s.Pop()
			if err != nil || !ok {
				t.Fatalf("pop top: ok=%v err=%v", ok, err)
			}
			expect := crashSeedItems
			if bytes.Equal(top, probeVal) {
				// probe survived whole — continue with the seeds
			} else if bytes.Equal(top, crashVal(crashSeedItems)) {
				expect = crashSeedItems - 1
			} else {
				t.Fatalf("top of stack is %q, want probe or seed-%03d", top, crashSeedItems)
			}
			for i := expect; i >= 1; i-- {
				v, ok, err := s.Pop()
				if err != nil || !ok || !bytes.Equal(v, crashVal(i)) {
					t.Fatalf("LIFO broken at seed %d: ok=%v err=%v got=%q", i, ok, err, v)
				}
			}
			if _, ok, _ := s.Pop(); ok {
				t.Fatal("stack not empty after popping all expected items")
			}
		},
	}
}

func queueCrashCase() crashCase {
	return crashCase{
		name: "Queue",
		build: func(t *testing.T, c *core.Conn) func() error {
			q, err := CreateQueue(c, "Queue", crashOpts())
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= crashSeedItems; i++ {
				if err := q.Enqueue(crashVal(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := q.Drain(); err != nil {
				t.Fatal(err)
			}
			return func() error { return q.Enqueue(probeVal) }
		},
		check: func(t *testing.T, c *core.Conn) {
			q, err := OpenQueue(c, "Queue", crashOpts())
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			if err := q.Drain(); err != nil {
				t.Fatalf("drain: %v", err)
			}
			// FIFO: the seeds in strict enqueue order, optionally followed
			// by the probe value, then empty.
			for i := 1; i <= crashSeedItems; i++ {
				v, ok, err := q.Dequeue()
				if err != nil || !ok || !bytes.Equal(v, crashVal(i)) {
					t.Fatalf("FIFO broken at seed %d: ok=%v err=%v got=%q", i, ok, err, v)
				}
			}
			if v, ok, err := q.Dequeue(); err != nil {
				t.Fatalf("tail dequeue: %v", err)
			} else if ok && !bytes.Equal(v, probeVal) {
				t.Fatalf("tail item is %q, want the probe value or nothing", v)
			}
			if _, ok, _ := q.Dequeue(); ok {
				t.Fatal("queue not empty after the probe slot")
			}
		},
	}
}

// kvCrash is the common surface of the six index structures.
type kvCrash interface {
	Put(key uint64, val []byte) error
	Get(key uint64) ([]byte, bool, error)
	Drain() error
}

func makeKV(c *core.Conn, kind string) (kvCrash, error) {
	switch kind {
	case "HashTable":
		return CreateHashTable(c, kind, crashOpts())
	case "SkipList":
		return CreateSkipList(c, kind, crashOpts())
	case "BST":
		return CreateBST(c, kind, crashOpts())
	case "BPTree":
		return CreateBPTree(c, kind, crashOpts())
	case "MVBST":
		return CreateMVBST(c, kind, crashOpts())
	case "MVBPTree":
		return CreateMVBPTree(c, kind, crashOpts())
	}
	return nil, fmt.Errorf("unknown kind %q", kind)
}

func reopenKVCrash(c *core.Conn, kind string) (kvCrash, error) {
	switch kind {
	case "HashTable":
		return OpenHashTable(c, kind, true, crashOpts())
	case "SkipList":
		return OpenSkipList(c, kind, true, crashOpts())
	case "BST":
		return OpenBST(c, kind, true, crashOpts())
	case "BPTree":
		return OpenBPTree(c, kind, true, crashOpts())
	case "MVBST":
		return OpenMVBST(c, kind, true, crashOpts())
	case "MVBPTree":
		return OpenMVBPTree(c, kind, true, crashOpts())
	}
	return nil, fmt.Errorf("unknown kind %q", kind)
}

// partCrashProbeKeys returns one key per partition (in partition order,
// avoiding the seed keys) so a PutMulti probe touches every partition.
func partCrashProbeKeys(parts int) []uint64 {
	keys := make([]uint64, parts)
	for want := 0; want < parts; want++ {
		for k := uint64(100); ; k++ {
			if partIndex(k, parts) == want {
				keys[want] = k
				break
			}
		}
	}
	return keys
}

// partitionedCrashCase crashes a cross-partition PutMulti at every
// write-class verb. Under ModeR (batch 1) each routed Put commits before
// the next partition's starts, so the surviving probe keys must be a
// prefix of the PutMulti order; the mapping meta entry must stay
// readable, and every surviving key must live in its owning partition.
func partitionedCrashCase() crashCase {
	const parts = 3
	return crashCase{
		name: "Part",
		build: func(t *testing.T, c *core.Conn) func() error {
			p, err := CreatePartitioned([]*core.Conn{c}, KindHashTable, "Part", parts, crashOpts())
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= crashSeedItems; i++ {
				if err := p.Put(uint64(i), crashVal(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := p.DrainAll(); err != nil {
				t.Fatal(err)
			}
			probeKeys := partCrashProbeKeys(parts)
			probeVals := make([][]byte, parts)
			for i := range probeVals {
				probeVals[i] = probeVal
			}
			return func() error { return p.PutMulti(probeKeys, probeVals) }
		},
		check: func(t *testing.T, c *core.Conn) {
			// The dead writer held each partition's lock; the meta entry
			// never takes one (BreakLock on it was a no-op).
			for i := 0; i < parts; i++ {
				raw, err := c.Open(fmt.Sprintf("Part#%d", i), true)
				if err != nil {
					t.Fatalf("raw partition open %d: %v", i, err)
				}
				if err := raw.BreakLock(1); err != nil {
					t.Fatalf("break partition %d lock: %v", i, err)
				}
			}
			p, err := OpenPartitioned([]*core.Conn{c}, "Part", true, crashOpts())
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			if got := len(p.Parts()); got != parts {
				t.Fatalf("mapping meta reports %d partitions, want %d", got, parts)
			}
			if err := p.DrainAll(); err != nil {
				t.Fatalf("drain: %v", err)
			}
			for i := 1; i <= crashSeedItems; i++ {
				got, ok, err := p.Get(uint64(i))
				if err != nil || !ok || !bytes.Equal(got, crashVal(i)) {
					t.Fatalf("seed key %d lost or wrong: ok=%v err=%v got=%q", i, ok, err, got)
				}
			}
			probeKeys := partCrashProbeKeys(parts)
			vals, found, err := p.GetMulti(probeKeys)
			if err != nil {
				t.Fatalf("probe multi-get: %v", err)
			}
			inPrefix := true
			for i, k := range probeKeys {
				if found[i] && !bytes.Equal(vals[i], probeVal) {
					t.Fatalf("probe key %d mangled: got %q", k, vals[i])
				}
				if found[i] && !inPrefix {
					t.Fatalf("probe survivors not a prefix: key %d present after a gap", k)
				}
				if !found[i] {
					inPrefix = false
				}
			}
			// Routing-table consistency: each surviving probe key must be
			// in exactly the partition the hash names.
			for i, k := range probeKeys {
				if !found[i] {
					continue
				}
				ht, err := OpenHashTable(c, fmt.Sprintf("Part#%d", partIndex(k, parts)), false, crashOpts())
				if err != nil {
					t.Fatalf("owner partition open: %v", err)
				}
				if _, ok, err := ht.Get(k); err != nil || !ok {
					t.Fatalf("probe key %d missing from its owning partition: ok=%v err=%v", k, ok, err)
				}
			}
		},
	}
}

// stripedProbeKeys returns one key per stripe (in stripe order, avoiding
// the seed keys) so a PutMulti probe touches every stripe.
func stripedProbeKeys(stripes int, bits uint) []uint64 {
	keys := make([]uint64, stripes)
	for want := 0; want < stripes; want++ {
		for k := uint64(100); ; k++ {
			if stripeOf(k, bits) == want {
				keys[want] = k
				break
			}
		}
	}
	return keys
}

// stripedCrashCase is the mid-stripe writer death row: a cross-stripe
// PutMulti crashed at every write-class verb. Ordered acquisition means
// the dying front-end holds every involved stripe lock — some stripes'
// puts fully logged, one possibly torn mid-write, the rest never started.
// Recovery is per stripe: each stripe's lock-ahead log still names the
// dead holder, BreakLock frees that stripe's word independently of its
// siblings, and the reopen scans that stripe's own logs (replaying a
// fully persisted op record, discarding a torn one). Seeds must survive
// byte-for-byte; under ModeR (batch 1) the surviving probe keys must be
// a prefix of the PutMulti order, each living in its owning stripe.
func stripedCrashCase() crashCase {
	const stripes = 4
	return crashCase{
		name: "Striped",
		build: func(t *testing.T, c *core.Conn) func() error {
			s, err := CreateStriped(c, KindHashTable, "Striped", stripes, crashOpts())
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= crashSeedItems; i++ {
				if err := s.Put(uint64(i), crashVal(i)); err != nil {
					t.Fatal(err)
				}
			}
			probeKeys := stripedProbeKeys(stripes, s.bits)
			probeVals := make([][]byte, stripes)
			for i := range probeVals {
				probeVals[i] = probeVal
			}
			return func() error { return s.PutMulti(probeKeys, probeVals) }
		},
		check: func(t *testing.T, c *core.Conn) {
			// The dead writer held each involved stripe's shared lock; the
			// per-stripe lock-ahead logs name it, so each word is broken
			// independently.
			for i := 0; i < stripes; i++ {
				raw, err := c.Open(stripeName("Striped", i), true)
				if err != nil {
					t.Fatalf("raw stripe open %d: %v", i, err)
				}
				if err := raw.BreakLock(1); err != nil {
					t.Fatalf("break stripe %d lock: %v", i, err)
				}
			}
			s, err := OpenStriped(c, "Striped", true, crashOpts())
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			if got := s.Stripes(); got != stripes {
				t.Fatalf("stripe meta reports %d stripes, want %d", got, stripes)
			}
			for i := 1; i <= crashSeedItems; i++ {
				got, ok, err := s.Get(uint64(i))
				if err != nil || !ok || !bytes.Equal(got, crashVal(i)) {
					t.Fatalf("seed key %d lost or wrong: ok=%v err=%v got=%q", i, ok, err, got)
				}
			}
			probeKeys := stripedProbeKeys(stripes, s.bits)
			vals, found, err := s.GetMulti(probeKeys)
			if err != nil {
				t.Fatalf("probe multi-get: %v", err)
			}
			inPrefix := true
			for i, k := range probeKeys {
				if found[i] && !bytes.Equal(vals[i], probeVal) {
					t.Fatalf("probe key %d mangled: got %q", k, vals[i])
				}
				if found[i] && !inPrefix {
					t.Fatalf("probe survivors not a prefix: key %d present after a gap", k)
				}
				if !found[i] {
					inPrefix = false
				}
				// Stripe-routing consistency: a surviving key must be in
				// exactly the stripe the hash names.
				if found[i] {
					if _, ok, err := s.Stripe(i).Get(k); err != nil || !ok {
						t.Fatalf("probe key %d missing from its owning stripe: ok=%v err=%v", k, ok, err)
					}
				}
			}
		},
	}
}

const kvProbeKey = 50

func kvCrashCase(kind string) crashCase {
	return crashCase{
		name: kind,
		build: func(t *testing.T, c *core.Conn) func() error {
			kv, err := makeKV(c, kind)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= crashSeedItems; i++ {
				if err := kv.Put(uint64(i), crashVal(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := kv.Drain(); err != nil {
				t.Fatal(err)
			}
			return func() error { return kv.Put(kvProbeKey, probeVal) }
		},
		check: func(t *testing.T, c *core.Conn) {
			kv, err := reopenKVCrash(c, kind)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			if err := kv.Drain(); err != nil {
				t.Fatalf("drain: %v", err)
			}
			for i := 1; i <= crashSeedItems; i++ {
				got, ok, err := kv.Get(uint64(i))
				if err != nil || !ok || !bytes.Equal(got, crashVal(i)) {
					t.Fatalf("seed key %d lost or wrong: ok=%v err=%v got=%q", i, ok, err, got)
				}
			}
			got, ok, err := kv.Get(kvProbeKey)
			if err != nil {
				t.Fatalf("probe key get: %v", err)
			}
			if ok && !bytes.Equal(got, probeVal) {
				t.Fatalf("probe key mangled: got %q, want %q or absent", got, probeVal)
			}
			// Ordered structures must also scan sorted and complete.
			if bt, isBPT := kv.(*BPTree); isBPT {
				keys, _, err := bt.Scan(0, 64)
				if err != nil {
					t.Fatalf("scan: %v", err)
				}
				want := []uint64{1, 2, 3, 4, 5}
				if ok {
					want = append(want, kvProbeKey)
				}
				if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
					t.Fatalf("scan not sorted: %v", keys)
				}
				if len(keys) != len(want) {
					t.Fatalf("scan keys %v, want %v", keys, want)
				}
				for i := range want {
					if keys[i] != want[i] {
						t.Fatalf("scan keys %v, want %v", keys, want)
					}
				}
			}
		},
	}
}

// ---- migration-phase rows (elastic rebalancing plane) ----
//
// A handoff adds crash surfaces of its own: the source dying mid-stream,
// the destination dying before cutover, and the coordinator dying in the
// window between the map flip and reclaim bookkeeping. Each row recovers
// on fresh front-ends (and, where the row kills a node, a rebuilt
// back-end over the crashed device) and asserts the two invariants the
// protocol promises: recovery lands on exactly ONE owner, and no
// committed operation is lost.

// migCrashOpts sizes migration crash cells.
func migCrashOpts() Options { return Options{Create: testCreate, Buckets: 256} }

// breakPart frees a dead writer's lock on one partition child.
func breakPart(t *testing.T, c *core.Conn, name string, holder uint16) {
	t.Helper()
	raw, err := c.Open(name, true)
	if err != nil {
		t.Fatalf("raw open %s: %v", name, err)
	}
	if err := raw.BreakLock(holder); err != nil {
		t.Fatalf("break lock %s: %v", name, err)
	}
}

// TestMigrationCrashSourceMidStream kills the source back-end while the
// snapshot streams. The map never flipped, so recovery must land on the
// source as sole owner, every committed op intact, and a retry must
// probe past the orphaned destination generation and complete.
func TestMigrationCrashSourceMidStream(t *testing.T) {
	cell := newMigCell(t, 2)
	const parts = 2
	p, err := CreateElastic(cell.conns, KindHashTable, "mcrA", parts, migCrashOpts())
	if err != nil {
		t.Fatal(err)
	}
	oracle := map[uint64][]byte{}
	for i := 1; i <= 60; i++ {
		if err := p.Put(uint64(i), val(i)); err != nil {
			t.Fatal(err)
		}
		oracle[uint64(i)] = val(i)
	}
	if err := p.DrainAll(); err != nil {
		t.Fatal(err)
	}
	const pi = 0 // lives on back-end 0, which also hosts the meta entry
	m, err := p.BeginMigration(pi, cell.conns[1])
	if err != nil {
		t.Fatal(err)
	}
	if m.Dst() == nil {
		t.Fatal("begin left no destination structure")
	}
	// The source node dies a few verbs into the stream.
	seen, dead := 0, false
	cell.conns[0].Endpoint().SetFault(func(op rdma.Op, off uint64, sz int) rdma.Fault {
		if dead {
			return rdma.Fault{Err: rdma.ErrDisconnected}
		}
		seen++
		if seen == 3 {
			dead = true
			return rdma.Fault{Err: rdma.ErrDisconnected}
		}
		return rdma.Fault{}
	})
	if _, err := m.StreamSnapshot(); err == nil {
		t.Fatal("snapshot stream succeeded despite source death")
	}
	cell.crashBackend(0)

	conns2 := cell.connect(2)
	breakPart(t, conns2[0], "mcrA#0", 1)
	breakPart(t, conns2[1], "mcrA#1", 1)
	p2, err := OpenPartitioned(conns2, "mcrA", true, migCrashOpts())
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	if got := p2.Migrating(); got != pi {
		t.Fatalf("recovered migration word names partition %d, want %d", got, pi)
	}
	res, err := p2.ResolveMigration()
	if err != nil {
		t.Fatal(err)
	}
	if res != -1 {
		t.Fatalf("resolution = %+d, want -1 (aborted stream)", res)
	}
	if h := p2.PartHandle(pi); h == nil || h.Conn().BackendID() != 0 {
		t.Fatal("ownership moved despite an unflipped map")
	}
	if err := p2.DrainAll(); err != nil {
		t.Fatal(err)
	}
	for k, want := range oracle {
		got, ok, err := p2.Get(k)
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("committed key %d lost: ok=%v err=%v got=%q", k, ok, err, got)
		}
	}
	// Retry: the orphaned generation-1 destination must not collide.
	m2, err := p2.BeginMigration(pi, conns2[1])
	if err != nil {
		t.Fatal(err)
	}
	if m2.gen != 2 {
		t.Fatalf("retry generation %d, want 2", m2.gen)
	}
	if _, err := m2.StreamSnapshot(); err != nil {
		t.Fatal(err)
	}
	if err := m2.Cutover(); err != nil {
		t.Fatal(err)
	}
	if err := m2.Finish(); err != nil {
		t.Fatal(err)
	}
	if h := p2.PartHandle(pi); h == nil || h.Conn().BackendID() != 1 {
		t.Fatal("retry handoff did not land on the destination")
	}
	for k, want := range oracle {
		got, ok, err := p2.Get(k)
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("key %d after retry handoff: ok=%v err=%v got=%q", k, ok, err, got)
		}
	}
}

// TestMigrationCrashDestBeforeCutover kills the destination back-end
// after the snapshot landed and the double-log window opened, before any
// cutover. The source remains sole owner with every committed write —
// including the double-logged suffix — and a retry completes.
func TestMigrationCrashDestBeforeCutover(t *testing.T) {
	cell := newMigCell(t, 2)
	const parts = 2
	p, err := CreateElastic(cell.conns, KindHashTable, "mcrB", parts, migCrashOpts())
	if err != nil {
		t.Fatal(err)
	}
	oracle := map[uint64][]byte{}
	for i := 1; i <= 60; i++ {
		if err := p.Put(uint64(i), val(i)); err != nil {
			t.Fatal(err)
		}
		oracle[uint64(i)] = val(i)
	}
	if err := p.DrainAll(); err != nil {
		t.Fatal(err)
	}
	const pi = 0
	m, err := p.BeginMigration(pi, cell.conns[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.StreamSnapshot(); err != nil {
		t.Fatal(err)
	}
	// Double-logged suffix: committed on the source, mirrored to the
	// destination that is about to die.
	for i, k := range migKeysFor(pi, parts, 6, 1000) {
		if err := p.Put(k, val(5000+i)); err != nil {
			t.Fatal(err)
		}
		oracle[k] = val(5000 + i)
	}
	if err := p.DrainAll(); err != nil {
		t.Fatal(err)
	}
	cell.crashBackend(1)

	conns2 := cell.connect(2)
	breakPart(t, conns2[0], "mcrB#0", 1)
	breakPart(t, conns2[1], "mcrB#1", 1)
	p2, err := OpenPartitioned(conns2, "mcrB", true, migCrashOpts())
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	res, err := p2.ResolveMigration()
	if err != nil {
		t.Fatal(err)
	}
	if res != -1 {
		t.Fatalf("resolution = %+d, want -1 (map never flipped)", res)
	}
	if h := p2.PartHandle(pi); h == nil || h.Conn().BackendID() != 0 {
		t.Fatal("ownership moved despite an unflipped map")
	}
	if err := p2.DrainAll(); err != nil {
		t.Fatal(err)
	}
	for k, want := range oracle {
		got, ok, err := p2.Get(k)
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("committed key %d lost: ok=%v err=%v got=%q", k, ok, err, got)
		}
	}
	m2, err := p2.BeginMigration(pi, conns2[1])
	if err != nil {
		t.Fatal(err)
	}
	if m2.gen != 2 {
		t.Fatalf("retry generation %d, want 2", m2.gen)
	}
	if _, err := m2.StreamSnapshot(); err != nil {
		t.Fatal(err)
	}
	if err := m2.Cutover(); err != nil {
		t.Fatal(err)
	}
	if err := m2.Finish(); err != nil {
		t.Fatal(err)
	}
	for k, want := range oracle {
		got, ok, err := p2.Get(k)
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("key %d after retry handoff: ok=%v err=%v got=%q", k, ok, err, got)
		}
	}
}

// TestMigrationCrashAfterFlip kills the coordinator — and then power-
// fails BOTH nodes — in the window between the cutover's map flip and
// the reclaim bookkeeping. The flip is one durable logged write, so
// recovery must land on the destination as sole owner with the full
// history (snapshot + double-logged suffix), and the stale source area
// must be dead weight, not a second owner.
func TestMigrationCrashAfterFlip(t *testing.T) {
	cell := newMigCell(t, 2)
	const parts = 2
	p, err := CreateElastic(cell.conns, KindHashTable, "mcrC", parts, migCrashOpts())
	if err != nil {
		t.Fatal(err)
	}
	oracle := map[uint64][]byte{}
	for i := 1; i <= 60; i++ {
		if err := p.Put(uint64(i), val(i)); err != nil {
			t.Fatal(err)
		}
		oracle[uint64(i)] = val(i)
	}
	if err := p.DrainAll(); err != nil {
		t.Fatal(err)
	}
	const pi = 0
	m, err := p.BeginMigration(pi, cell.conns[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.StreamSnapshot(); err != nil {
		t.Fatal(err)
	}
	suffix := migKeysFor(pi, parts, 6, 1000)
	for i, k := range suffix {
		if err := p.Put(k, val(6000+i)); err != nil {
			t.Fatal(err)
		}
		oracle[k] = val(6000 + i)
	}
	if err := m.Cutover(); err != nil {
		t.Fatal(err)
	}
	// Coordinator dies here: no Finish, and both nodes power-fail.
	cell.crashBackend(0)
	cell.crashBackend(1)

	conns2 := cell.connect(2)
	breakPart(t, conns2[1], "mcrC#0.g1", 1)
	breakPart(t, conns2[1], "mcrC#1", 1)
	p2, err := OpenPartitioned(conns2, "mcrC", true, migCrashOpts())
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	if h := p2.PartHandle(pi); h == nil || h.Conn().BackendID() != 1 {
		t.Fatal("durable flip lost: recovery did not land on the destination")
	}
	res, err := p2.ResolveMigration()
	if err != nil {
		t.Fatal(err)
	}
	if res != 1 {
		t.Fatalf("resolution = %+d, want +1 (flip already durable)", res)
	}
	if err := p2.DrainAll(); err != nil {
		t.Fatal(err)
	}
	for k, want := range oracle {
		got, ok, err := p2.Get(k)
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("committed key %d lost: ok=%v err=%v got=%q", k, ok, err, got)
		}
	}
	// Exactly one owner: a post-recovery write reaches the destination
	// area and never the stale source.
	probe := suffix[0]
	if err := p2.Put(probe, val(7777)); err != nil {
		t.Fatal(err)
	}
	if err := p2.DrainAll(); err != nil {
		t.Fatal(err)
	}
	dstChild, err := OpenHashTable(conns2[1], "mcrC#0.g1", false, migCrashOpts())
	if err != nil {
		t.Fatal(err)
	}
	if got, ok, err := dstChild.Get(probe); err != nil || !ok || !bytes.Equal(got, val(7777)) {
		t.Fatalf("destination area missing the post-recovery write: ok=%v err=%v got=%q", ok, err, got)
	}
	srcChild, err := OpenHashTable(conns2[0], "mcrC#0", false, migCrashOpts())
	if err != nil {
		t.Fatal(err)
	}
	if got, ok, _ := srcChild.Get(probe); ok && bytes.Equal(got, val(7777)) {
		t.Fatal("stale source area also received the post-recovery write: two owners")
	}
}

// TestMigrationCrashStriped covers the striped rows of the phase matrix:
// a coordinator death before cutover leaves the source sole owner (and a
// retry surfaces the orphaned same-name destination as ErrExists rather
// than corrupting it); a death after cutover leaves the moved-to stamp
// durable, so the source redirects and the destination owns the full
// history.
func TestMigrationCrashStriped(t *testing.T) {
	t.Run("before-cutover", func(t *testing.T) {
		cell := newMigCell(t, 2)
		s, err := CreateStriped(cell.conns[0], KindHashTable, "mcrS", 4, migCrashOpts())
		if err != nil {
			t.Fatal(err)
		}
		oracle := map[uint64][]byte{}
		for i := 1; i <= 80; i++ {
			k := uint64(i * 2654435761)
			if err := s.Put(k, val(i)); err != nil {
				t.Fatal(err)
			}
			oracle[k] = val(i)
		}
		m, err := s.BeginMigration(cell.conns[1])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.StreamSnapshot(); err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 10; i++ {
			k := uint64(8_000_000 + i)
			if err := s.Put(k, val(4000+i)); err != nil {
				t.Fatal(err)
			}
			oracle[k] = val(4000 + i)
		}
		// Coordinator dies before Cutover; both nodes power-fail.
		cell.crashBackend(0)
		cell.crashBackend(1)

		conns2 := cell.connect(2)
		s2, err := OpenStriped(conns2[0], "mcrS", true, migCrashOpts())
		if err != nil {
			t.Fatalf("source must still open (no moved-to stamp): %v", err)
		}
		for k, want := range oracle {
			got, ok, err := s2.Get(k)
			if err != nil || !ok || !bytes.Equal(got, want) {
				t.Fatalf("committed key %d lost on the source: ok=%v err=%v got=%q", k, ok, err, got)
			}
		}
		// The orphaned same-name destination blocks a blind retry: that is
		// surfaced, never silently adopted (re-replaying into a partially
		// streamed structure could double-apply).
		if _, err := s2.BeginMigration(conns2[1]); !errors.Is(err, core.ErrExists) {
			t.Fatalf("retry against an orphaned destination = %v, want ErrExists", err)
		}
	})
	t.Run("after-cutover", func(t *testing.T) {
		cell := newMigCell(t, 2)
		s, err := CreateStriped(cell.conns[0], KindHashTable, "mcrS2", 4, migCrashOpts())
		if err != nil {
			t.Fatal(err)
		}
		oracle := map[uint64][]byte{}
		for i := 1; i <= 80; i++ {
			k := uint64(i * 2654435761)
			if err := s.Put(k, val(i)); err != nil {
				t.Fatal(err)
			}
			oracle[k] = val(i)
		}
		m, err := s.BeginMigration(cell.conns[1])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.StreamSnapshot(); err != nil {
			t.Fatal(err)
		}
		if err := m.Cutover(); err != nil {
			t.Fatal(err)
		}
		// Coordinator dies before Finish; both nodes power-fail.
		cell.crashBackend(0)
		cell.crashBackend(1)

		conns2 := cell.connect(2)
		if _, err := OpenStriped(conns2[0], "mcrS2", false, migCrashOpts()); !errors.Is(err, core.ErrMoved) {
			t.Fatalf("moved source open = %v, want ErrMoved", err)
		}
		d, err := OpenStriped(conns2[1], "mcrS2", true, migCrashOpts())
		if err != nil {
			t.Fatalf("destination open: %v", err)
		}
		for k, want := range oracle {
			got, ok, err := d.Get(k)
			if err != nil || !ok || !bytes.Equal(got, want) {
				t.Fatalf("committed key %d lost on the destination: ok=%v err=%v got=%q", k, ok, err, got)
			}
		}
	})
}
