package ds

import (
	"encoding/binary"
	"fmt"

	"asymnvm/internal/backend"
	"asymnvm/internal/core"
	"asymnvm/internal/logrec"
)

// SkipList is the lock-free skip list of §8.4. Level heights are drawn
// with p = 0.5; insertion first writes the fully-linked new node, then
// updates predecessor pointers bottom-up, so concurrent readers always
// see a navigable list and never need a lock. Nodes with more levels sit
// on more search paths, so high nodes are the ones worth caching.
//
// Node layout (fixed size so a node is a single read unit):
//
//	{key u64, vlen u32, level u8, pad3, next[MaxLevel]u64, value[cap]}
const (
	// SkipListMaxLevel bounds tower heights; with p=0.5 this comfortably
	// covers tens of millions of keys.
	SkipListMaxLevel = 16
	slHdr            = 16
	slNextOff        = 16
	// slCacheLevel: nodes with at least this many levels are cached.
	slCacheLevel = 3
)

// SkipList is a persistent ordered map. The root pointer is the sentinel
// head node (full height, no key).
type SkipList struct {
	h      *core.Handle
	w      writerSession
	cap    int
	head   uint64
	writer bool
}

func (s *SkipList) nodeSize() int { return slHdr + SkipListMaxLevel*8 + s.cap }

// CreateSkipList registers a new skip list and writes its sentinel.
func CreateSkipList(c *core.Conn, name string, opts Options) (*SkipList, error) {
	opts.fill()
	h, err := c.Create(name, backend.TypeSkipList, opts.Create)
	if err != nil {
		return nil, err
	}
	s := &SkipList{h: h, w: writerSession{h: h, lockPerOp: opts.LockPerOp}, cap: opts.ValueCap, writer: true}
	// Sentinel head: full height, all next pointers nil. Initialized
	// through the log path so mirrors replicate it.
	head, err := c.Calloc(uint64(s.nodeSize()))
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, s.nodeSize())
	hdr[12] = SkipListMaxLevel
	if err := h.Write(head, hdr); err != nil {
		return nil, err
	}
	if err := h.WriteRoot(head); err != nil {
		return nil, err
	}
	if err := h.Flush(); err != nil {
		return nil, err
	}
	s.head = head
	if !opts.LockPerOp {
		if err := h.WriterLock(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// OpenSkipList attaches to an existing skip list.
func OpenSkipList(c *core.Conn, name string, writer bool, opts Options) (*SkipList, error) {
	opts.fill()
	h, err := c.Open(name, writer)
	if err != nil {
		return nil, err
	}
	s := &SkipList{h: h, w: writerSession{h: h, lockPerOp: opts.LockPerOp}, cap: opts.ValueCap, writer: writer}
	head, err := h.ReadRoot()
	if err != nil {
		return nil, err
	}
	s.head = head
	if writer {
		if !opts.LockPerOp {
			if err := h.WriterLock(); err != nil {
				return nil, err
			}
		}
		if _, err := ReplayPending(h, s); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Handle exposes the underlying framework handle.
func (s *SkipList) Handle() *core.Handle { return s.h }

type slNode struct {
	key   uint64
	level int
	next  [SkipListMaxLevel]uint64
	val   []byte
}

func (s *SkipList) encodeNode(n *slNode) []byte {
	buf := make([]byte, s.nodeSize())
	binary.LittleEndian.PutUint64(buf, n.key)
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(n.val)))
	buf[12] = byte(n.level)
	for i := 0; i < SkipListMaxLevel; i++ {
		binary.LittleEndian.PutUint64(buf[slNextOff+8*i:], n.next[i])
	}
	copy(buf[slHdr+SkipListMaxLevel*8:], n.val)
	return buf
}

func (s *SkipList) decodeNode(buf []byte) (*slNode, error) {
	n := &slNode{}
	n.key = binary.LittleEndian.Uint64(buf)
	vlen := binary.LittleEndian.Uint32(buf[8:])
	n.level = int(buf[12])
	if int(vlen) > s.cap || n.level == 0 || n.level > SkipListMaxLevel {
		return nil, fmt.Errorf("ds: corrupt skiplist node (vlen=%d level=%d)", vlen, n.level)
	}
	for i := 0; i < SkipListMaxLevel; i++ {
		n.next[i] = binary.LittleEndian.Uint64(buf[slNextOff+8*i:])
	}
	vBase := slHdr + SkipListMaxLevel*8
	n.val = append([]byte(nil), buf[vBase:vBase+int(vlen)]...)
	return n, nil
}

// readNode reads a node; high towers get cached after the level is known.
func (s *SkipList) readNode(addr uint64) (*slNode, error) {
	buf, err := s.h.Read(addr, s.nodeSize(), false)
	if err != nil {
		return nil, err
	}
	n, err := s.decodeNode(buf)
	if err != nil {
		return nil, err
	}
	if n.level >= slCacheLevel || addr == s.head {
		s.h.CachePut(addr, buf)
	}
	return n, nil
}

// randomLevel draws a tower height with p = 0.5 (the paper sets p=0.5).
func (s *SkipList) randomLevel() int {
	lvl := 1
	r := s.h.Conn().Frontend().Rand()
	for lvl < SkipListMaxLevel && r&1 == 1 {
		lvl++
		r >>= 1
	}
	return lvl
}

// findPreds locates the predecessor node at every level (Figure 2's
// traversal), returning their addresses and decoded images.
func (s *SkipList) findPreds(key uint64) ([SkipListMaxLevel]uint64, map[uint64]*slNode, *slNode, error) {
	var preds [SkipListMaxLevel]uint64
	images := make(map[uint64]*slNode)
	cur := s.head
	curN, err := s.readNode(cur)
	if err != nil {
		return preds, nil, nil, err
	}
	images[cur] = curN
	var foundNode *slNode
	for level := SkipListMaxLevel - 1; level >= 0; level-- {
		for {
			nxt := curN.next[level]
			if nxt == 0 {
				break
			}
			nxtN, ok := images[nxt]
			if !ok {
				nxtN, err = s.readNode(nxt)
				if err != nil {
					return preds, nil, nil, err
				}
				images[nxt] = nxtN
			}
			if nxtN.key < key {
				cur, curN = nxt, nxtN
				continue
			}
			if nxtN.key == key {
				foundNode = nxtN
			}
			break
		}
		preds[level] = cur
	}
	return preds, images, foundNode, nil
}

// Put inserts or updates key.
func (s *SkipList) Put(key uint64, val []byte) error {
	if len(val) > s.cap {
		return ErrValueTooLarge
	}
	if err := s.w.begin(); err != nil {
		return err
	}
	if _, err := s.h.OpLog(OpPut, kvParams(key, val)); err != nil {
		return err
	}
	if err := s.put(key, val); err != nil {
		return err
	}
	return s.w.end()
}

func (s *SkipList) put(key uint64, val []byte) error {
	preds, images, found, err := s.findPreds(key)
	if err != nil {
		return err
	}
	if found != nil {
		// Update in place: find the node's address via pred level 0.
		addr := images[preds[0]].next[0]
		upd := *found
		upd.val = val
		return s.h.Write(addr, s.encodeNode(&upd))
	}
	lvl := s.randomLevel()
	node := &slNode{key: key, level: lvl, val: val}
	for i := 0; i < lvl; i++ {
		node.next[i] = images[preds[i]].next[i]
	}
	addr, err := s.h.Alloc(s.nodeSize())
	if err != nil {
		return err
	}
	// Write the fully linked new node first (§8.4's ordering)…
	if err := s.h.Write(addr, s.encodeNode(node)); err != nil {
		return err
	}
	// …then swing predecessor pointers bottom-up. Each predecessor is
	// rewritten as a whole unit; duplicates are coalesced per level set.
	for i := 0; i < lvl; i++ {
		p := images[preds[i]]
		p.next[i] = addr
	}
	written := make(map[uint64]bool)
	for i := 0; i < lvl; i++ {
		pa := preds[i]
		if written[pa] {
			continue
		}
		written[pa] = true
		if err := s.h.Write(pa, s.encodeNode(images[pa])); err != nil {
			return err
		}
	}
	return nil
}

// Get looks a key up. Skip-list readers are lock-free: they fetch the
// current sequence number only to freshen their cache epoch and never
// validate or retry (§8.4: "the lock is not required").
func (s *SkipList) Get(key uint64) ([]byte, bool, error) {
	s.h.Conn().Frontend().ChargeOp()
	if !s.writer {
		if err := s.h.ReaderLock(); err != nil {
			return nil, false, err
		}
	}
	_, _, found, err := s.findPreds(key)
	if err != nil {
		return nil, false, err
	}
	if found == nil {
		return nil, false, nil
	}
	return found.val, true, nil
}

// Flush flushes the batch buffers.
func (s *SkipList) Flush() error { return s.h.Flush() }

// Drain flushes and waits for replay.
func (s *SkipList) Drain() error {
	if err := s.h.Flush(); err != nil {
		return err
	}
	return s.h.Drain()
}

// Close drains and releases the writer lock.
func (s *SkipList) Close() error {
	if !s.writer {
		return nil
	}
	if err := s.Drain(); err != nil {
		return err
	}
	return s.h.WriterUnlock()
}

// ReplayOp re-executes one pending op-log record.
func (s *SkipList) ReplayOp(rec logrec.OpRecord) error {
	switch rec.OpType &^ logrec.OpTxFlag {
	case OpPut:
		key, val, err := splitKV(rec.Params)
		if err != nil {
			return err
		}
		if err := s.put(key, val); err != nil {
			return err
		}
		return s.h.EndOp()
	default:
		return fmt.Errorf("ds: skiplist cannot replay op %d", rec.OpType)
	}
}
