package ds

import (
	"bytes"
	"testing"

	"asymnvm/internal/core"
)

// TestHashTableGetMulti checks that the pipelined multi-get returns
// exactly what per-key Gets return — including missing keys, updated
// keys, and keys colliding into the same bucket — and that it pays
// fewer round trips than the sequential walk would.
func TestHashTableGetMulti(t *testing.T) {
	r := newRig(t)
	c := r.conn(1, core.ModeR().WithPipeline(16))
	ht, err := CreateHashTable(c, "hmg", Options{Create: testCreate, Buckets: 8, ValueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40 // 8 buckets → chains of ~5: real level-synchronous walks
	for i := 0; i < n; i++ {
		if err := ht.Put(uint64(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ht.Put(7, []byte("updated")); err != nil {
		t.Fatal(err)
	}
	if err := ht.Drain(); err != nil {
		t.Fatal(err)
	}

	keys := []uint64{0, 7, 13, 999, 39, 7, 1000000, 21}
	st := c.Frontend().Stats()
	verbsBefore := st.Snapshot().RDMAVerbs()
	vals, found, err := ht.GetMulti(keys)
	if err != nil {
		t.Fatal(err)
	}
	groupVerbs := st.Snapshot().RDMAVerbs() - verbsBefore

	for i, k := range keys {
		wv, wf, err := ht.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if wf != found[i] || !bytes.Equal(wv, vals[i]) {
			t.Fatalf("key %d: GetMulti (%q,%v) != Get (%q,%v)", k, vals[i], found[i], wv, wf)
		}
	}
	seqVerbs := st.Snapshot().RDMAVerbs() - verbsBefore - groupVerbs
	if groupVerbs >= seqVerbs {
		t.Fatalf("GetMulti paid %d round trips, sequential Gets paid %d — no batching happened", groupVerbs, seqVerbs)
	}
	if st.DoorbellGroups.Load() == 0 || st.PostedVerbs.Load() == 0 {
		t.Fatal("pipelined multi-get must post WRs and ring doorbells")
	}
}

// TestBPTreeScanPipelined checks the batched leaf-blob fetch against the
// tree's Get path and pins the round-trip saving.
func TestBPTreeScanPipelined(t *testing.T) {
	r := newRig(t)
	c := r.conn(1, core.ModeR().WithPipeline(16))
	bt, err := CreateBPTree(c, "bmg", Options{Create: testCreate, ValueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if err := bt.Put(uint64(i*2), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := bt.Drain(); err != nil {
		t.Fatal(err)
	}

	st := c.Frontend().Stats()
	before := st.Snapshot().RDMAVerbs()
	keys, vals, err := bt.Scan(100, 50)
	if err != nil {
		t.Fatal(err)
	}
	scanVerbs := st.Snapshot().RDMAVerbs() - before
	if len(keys) != 50 {
		t.Fatalf("scan returned %d keys, want 50", len(keys))
	}
	for i, k := range keys {
		if k < 100 || (i > 0 && keys[i-1] >= k) {
			t.Fatalf("scan keys out of range/order at %d: %v", i, keys[:i+1])
		}
		want, found, err := bt.Get(k)
		if err != nil || !found {
			t.Fatalf("Get(%d): %v found=%v", k, err, found)
		}
		if !bytes.Equal(vals[i], want) {
			t.Fatalf("scan value for key %d = %q, want %q", k, vals[i], want)
		}
	}
	// 50 blob reads + a handful of node reads; without batching this is
	// >50 round trips, with depth 16 the blobs cost ~2 groups per leaf.
	if scanVerbs > 30 {
		t.Fatalf("pipelined scan paid %d round trips for 50 values, batching is not engaging", scanVerbs)
	}
}
