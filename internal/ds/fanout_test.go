package ds

import (
	"bytes"
	"testing"

	"asymnvm/internal/backend"
	"asymnvm/internal/clock"
	"asymnvm/internal/core"
	"asymnvm/internal/nvm"
)

// fanoutRig builds k back-ends sharing one virtual-clock profile and a
// front-end connected to all of them. The overlap assertions need real
// verb costs, so this rig uses the default profile, not the zero one.
func fanoutRig(t *testing.T, k int, mode core.Mode) ([]*core.Conn, []*backend.Backend) {
	t.Helper()
	prof := clock.DefaultProfile()
	fe := core.NewFrontend(core.FrontendOptions{ID: 1, Mode: mode, Profile: &prof})
	var conns []*core.Conn
	var bks []*backend.Backend
	for i := 0; i < k; i++ {
		dev := nvm.NewDevice(64 << 20)
		bk, err := backend.New(dev, backend.Options{ID: uint16(i), Profile: &prof})
		if err != nil {
			t.Fatal(err)
		}
		bk.Start()
		t.Cleanup(bk.Stop)
		c, err := fe.Connect(bk)
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
		bks = append(bks, bk)
	}
	return conns, bks
}

// TestSkipListGetMulti checks the batched descent against per-key Gets —
// missing keys, updated keys — and pins the round-trip saving.
func TestSkipListGetMulti(t *testing.T) {
	r := newRig(t)
	c := r.conn(1, core.ModeR().WithPipeline(16))
	sl, err := CreateSkipList(c, "smg", Options{Create: testCreate, ValueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		if err := sl.Put(uint64(i*3), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sl.Put(30, []byte("updated")); err != nil {
		t.Fatal(err)
	}
	if err := sl.Drain(); err != nil {
		t.Fatal(err)
	}

	keys := []uint64{0, 30, 31, 99, 300, 357, 1000000, 30}
	st := c.Frontend().Stats()
	before := st.Snapshot().RDMAVerbs()
	vals, found, err := sl.GetMulti(keys)
	if err != nil {
		t.Fatal(err)
	}
	groupVerbs := st.Snapshot().RDMAVerbs() - before
	for i, k := range keys {
		wv, wf, err := sl.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if wf != found[i] || !bytes.Equal(wv, vals[i]) {
			t.Fatalf("key %d: GetMulti (%q,%v) != Get (%q,%v)", k, vals[i], found[i], wv, wf)
		}
	}
	seqVerbs := st.Snapshot().RDMAVerbs() - before - groupVerbs
	if groupVerbs >= seqVerbs {
		t.Fatalf("GetMulti paid %d round trips, sequential Gets paid %d — no batching happened", groupVerbs, seqVerbs)
	}
}

// TestBSTGetMulti checks the level-synchronous batched descent against
// per-key Gets under the retry seqlock.
func TestBSTGetMulti(t *testing.T) {
	r := newRig(t)
	c := r.conn(1, core.ModeR().WithPipeline(16))
	bt, err := CreateBST(c, "btmg", Options{Create: testCreate, ValueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		if err := bt.Put(uint64(i*2654435761), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := bt.Drain(); err != nil {
		t.Fatal(err)
	}

	keys := []uint64{2654435761, 2 * 2654435761, 77, 149 * 2654435761, 0, 3 * 2654435761}
	vals, found, err := bt.GetMulti(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		wv, wf, err := bt.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if wf != found[i] || !bytes.Equal(wv, vals[i]) {
			t.Fatalf("key %d: GetMulti (%q,%v) != Get (%q,%v)", k, vals[i], found[i], wv, wf)
		}
	}

	// A reader handle must get the same answers through the seqlock.
	c2 := r.conn(2, core.ModeR().WithPipeline(16))
	btr, err := OpenBST(c2, "btmg", false, Options{Create: testCreate, ValueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	rv, rf, err := btr.GetMulti(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if rf[i] != found[i] || !bytes.Equal(rv[i], vals[i]) {
			t.Fatalf("reader GetMulti mismatch at %d", i)
		}
	}
}

// TestPartitionedGetMultiFanout is the tentpole's ds-layer check: a
// multi-get over partitions on different back-ends runs inside one
// fan-out window, returns per-key-Get answers, and actually overlaps the
// doorbell groups across connections (FanoutSavedNS > 0).
func TestPartitionedGetMultiFanout(t *testing.T) {
	conns, _ := fanoutRig(t, 4, core.ModeR().WithPipeline(16))
	p, err := CreatePartitioned(conns, KindHashTable, "pfan", 4,
		Options{Create: testCreate, Buckets: 32, ValueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	oracle := map[uint64][]byte{}
	for i := 1; i <= 400; i++ {
		k := uint64(i * 2654435761)
		if err := p.Put(k, val(i)); err != nil {
			t.Fatal(err)
		}
		oracle[k] = val(i)
	}
	if err := p.DrainAll(); err != nil {
		t.Fatal(err)
	}

	var keys []uint64
	for i := 1; i <= 64; i++ {
		keys = append(keys, uint64(i*2654435761))
	}
	keys = append(keys, 12345) // absent

	st := conns[0].Frontend().Stats()
	winBefore := st.FanoutWindows.Load()
	vals, found, err := p.GetMulti(keys)
	if err != nil {
		t.Fatal(err)
	}
	if st.FanoutWindows.Load() <= winBefore {
		t.Fatal("partitioned GetMulti did not open a fan-out window")
	}
	if st.FanoutSavedNS.Load() <= 0 {
		t.Fatal("cross-connection overlap saved no virtual time")
	}
	for i, k := range keys {
		want, ok := oracle[k]
		if ok != found[i] || !bytes.Equal(want, vals[i]) {
			t.Fatalf("key %d: GetMulti (%q,%v), oracle (%q,%v)", k, vals[i], found[i], want, ok)
		}
	}
}

// TestPartitionedPutMultiFlushAll checks the write path: PutMulti routes,
// FlushAll commits every partition inside one fan-out window, and the
// data survives a reopen (so the overlapped commit is a real commit).
func TestPartitionedPutMultiFlushAll(t *testing.T) {
	conns, bks := fanoutRig(t, 2, core.Mode{OpLog: true, Batch: 16, Pipeline: 8})
	p, err := CreatePartitioned(conns, KindHashTable, "pput", 4,
		Options{Create: testCreate, Buckets: 32, ValueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	var keys []uint64
	var vals [][]byte
	for i := 1; i <= 200; i++ {
		keys = append(keys, uint64(i*2654435761))
		vals = append(vals, val(i))
	}
	if err := p.PutMulti(keys, vals); err != nil {
		t.Fatal(err)
	}
	st := conns[0].Frontend().Stats()
	winBefore := st.FanoutWindows.Load()
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if st.FanoutWindows.Load() <= winBefore {
		t.Fatal("FlushAll did not open a fan-out window")
	}
	if err := p.DrainAll(); err != nil {
		t.Fatal(err)
	}
	// Fresh front-end: only replayed state is visible.
	fe2 := core.NewFrontend(core.FrontendOptions{ID: 2, Mode: core.ModeR(), Profile: &zprof})
	var conns2 []*core.Conn
	for _, bk := range bks {
		c2, err := fe2.Connect(bk)
		if err != nil {
			t.Fatal(err)
		}
		conns2 = append(conns2, c2)
	}
	p2, err := OpenPartitioned(conns2, "pput", false, Options{Create: testCreate, Buckets: 32, ValueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := p2.GetMulti(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if !ok[i] || !bytes.Equal(got[i], vals[i]) {
			t.Fatalf("key %d lost across FlushAll+reopen", keys[i])
		}
	}
}

// TestPartitionedGetMultiAllKinds runs the partitioned multi-get parity
// check for every partitionable kind — walker-backed kinds go through the
// fan-out path, the rest through the per-key fallback.
func TestPartitionedGetMultiAllKinds(t *testing.T) {
	kinds := []struct {
		name string
		kind KVKind
	}{
		{"bst", KindBST}, {"bptree", KindBPTree}, {"skiplist", KindSkipList},
		{"hashtable", KindHashTable}, {"mvbst", KindMVBST}, {"mvbptree", KindMVBPTree},
	}
	for _, tc := range kinds {
		t.Run(tc.name, func(t *testing.T) {
			conns, _ := fanoutRig(t, 2, core.ModeR().WithPipeline(16))
			p, err := CreatePartitioned(conns, tc.kind, "pk-"+tc.name, 3,
				Options{Create: testCreate, Buckets: 32, ValueCap: 64})
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= 90; i++ {
				if err := p.Put(uint64(i*7), val(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := p.DrainAll(); err != nil {
				t.Fatal(err)
			}
			keys := []uint64{7, 14, 630, 631, 9999, 35, 441}
			vals, found, err := p.GetMulti(keys)
			if err != nil {
				t.Fatal(err)
			}
			for i, k := range keys {
				wv, wf, err := p.Get(k)
				if err != nil {
					t.Fatal(err)
				}
				if wf != found[i] || !bytes.Equal(wv, vals[i]) {
					t.Fatalf("key %d: GetMulti (%q,%v) != Get (%q,%v)", k, vals[i], found[i], wv, wf)
				}
			}
		})
	}
}
