package ds

import (
	"bytes"
	"math/rand"
	"testing"

	"asymnvm/internal/backend"
	"asymnvm/internal/clock"
	"asymnvm/internal/core"
	"asymnvm/internal/nvm"
)

// TestCrashStorm drives a hash table through rounds of operations with a
// back-end power failure after every round, re-opening the structure each
// time and checking it still matches an oracle of all drained writes.
// This is the §7.2 recovery machinery under repeated fire.
func TestCrashStorm(t *testing.T) {
	prof := clock.ZeroProfile()
	dev := nvm.NewDevice(128 << 20)
	bk, err := backend.New(dev, backend.Options{ID: 0, Profile: &prof})
	if err != nil {
		t.Fatal(err)
	}
	bk.Start()

	oracle := map[uint64][]byte{}
	rng := rand.New(rand.NewSource(777))
	opts := Options{Create: core.CreateOptions{MemLogSize: 1 << 20, OpLogSize: 512 << 10}, Buckets: 256}

	fe := core.NewFrontend(core.FrontendOptions{ID: 1, Mode: core.ModeRCB(1<<20, 8), Profile: &prof})
	conn, err := fe.Connect(bk)
	if err != nil {
		t.Fatal(err)
	}
	ht, err := CreateHashTable(conn, "storm", opts)
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 12; round++ {
		for i := 0; i < 60; i++ {
			k := uint64(rng.Intn(200)) + 1
			v := []byte{byte(round), byte(i), byte(k)}
			if err := ht.Put(k, v); err != nil {
				t.Fatalf("round %d put: %v", round, err)
			}
			oracle[k] = v
		}
		// Everything above is drained (acknowledged + applied) before the
		// power failure, so nothing may be lost.
		if err := ht.Drain(); err != nil {
			t.Fatalf("round %d drain: %v", round, err)
		}
		if err := ht.Handle().WriterUnlock(); err != nil {
			t.Fatal(err)
		}

		bk.Stop()
		dev.Crash(rand.New(rand.NewSource(int64(round))))
		bk, err = backend.New(dev, backend.Options{ID: 0, Profile: &prof})
		if err != nil {
			t.Fatalf("round %d restart: %v", round, err)
		}
		bk.Start()

		fe = core.NewFrontend(core.FrontendOptions{ID: uint16(2 + round%8), Mode: core.ModeRCB(1<<20, 8), Profile: &prof})
		conn, err = fe.Connect(bk)
		if err != nil {
			t.Fatal(err)
		}
		ht, err = OpenHashTable(conn, "storm", true, opts)
		if err != nil {
			t.Fatalf("round %d reopen: %v", round, err)
		}
		for k, want := range oracle {
			got, ok, err := ht.Get(k)
			if err != nil {
				t.Fatalf("round %d get %d: %v", round, k, err)
			}
			if !ok || !bytes.Equal(got, want) {
				t.Fatalf("round %d: key %d lost or wrong after crash (ok=%v got=%v want=%v)", round, k, ok, got, want)
			}
		}
	}
	bk.Stop()
}

// TestCrashMidBatch crashes with an un-flushed batch in the front-end:
// un-acknowledged operations may vanish (they were never durable), but
// the drained prefix must survive and the structure must stay readable.
func TestCrashMidBatch(t *testing.T) {
	prof := clock.ZeroProfile()
	dev := nvm.NewDevice(64 << 20)
	bk, err := backend.New(dev, backend.Options{ID: 0, Profile: &prof})
	if err != nil {
		t.Fatal(err)
	}
	bk.Start()
	opts := Options{Create: core.CreateOptions{MemLogSize: 1 << 20, OpLogSize: 512 << 10}}
	fe := core.NewFrontend(core.FrontendOptions{ID: 1, Mode: core.ModeRCB(1<<20, 1000), Profile: &prof})
	conn, err := fe.Connect(bk)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := CreateBST(conn, "midbatch", opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 50; i++ {
		_ = bt.Put(i, []byte{byte(i)})
	}
	if err := bt.Drain(); err != nil {
		t.Fatal(err)
	}
	// 30 more puts stay in the batch buffer — never flushed.
	for i := uint64(100); i < 130; i++ {
		_ = bt.Put(i, []byte{9})
	}
	bk.Stop()
	dev.Crash(nil)

	bk2, err := backend.New(dev, backend.Options{ID: 0, Profile: &prof})
	if err != nil {
		t.Fatal(err)
	}
	bk2.Start()
	defer bk2.Stop()
	fe2 := core.NewFrontend(core.FrontendOptions{ID: 2, Mode: core.ModeR(), Profile: &prof})
	conn2, err := fe2.Connect(bk2)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := conn2.Open("midbatch", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := raw.BreakLock(1); err != nil {
		t.Fatal(err)
	}
	bt2, err := OpenBST(conn2, "midbatch", true, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := bt2.Drain(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 50; i++ {
		got, ok, err := bt2.Get(i)
		if err != nil || !ok || got[0] != byte(i) {
			t.Fatalf("drained key %d lost: ok=%v err=%v", i, ok, err)
		}
	}
	// Pending op-log records (if their group commit made it out) were
	// re-executed by OpenBST; either way the tree is consistent. Count
	// the recovered tail keys for the log.
	recovered := 0
	for i := uint64(100); i < 130; i++ {
		if _, ok, _ := bt2.Get(i); ok {
			recovered++
		}
	}
	t.Logf("un-flushed batch: %d/30 operations were durable and re-executed", recovered)
}
