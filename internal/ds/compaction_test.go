package ds

import (
	"bytes"
	"math/rand"
	"testing"

	"asymnvm/internal/backend"
	"asymnvm/internal/core"
	"asymnvm/internal/nvm"
	"asymnvm/internal/stats"
)

// TestCompactionLogWrapWriterProgress drives a workload several times the
// size of the memory and op logs through a compacting back-end: the
// writer's append-space gate must block on the truncation points, the
// back-end's checkpoints must advance them (reclaiming and scrubbing the
// dead prefix), and the writer must wrap the circular areas without ever
// overwriting live records. A final power-fail recovery then replays only
// checkpoint + suffix over the wrapped, partially scrubbed log.
func TestCompactionLogWrapWriterProgress(t *testing.T) {
	dev := nvm.NewDevice(64 << 20)
	st := &stats.Stats{}
	bk, err := backend.New(dev, backend.Options{ID: 0, Profile: &zprof, Stats: st,
		Compact: &backend.CompactConfig{Interval: 4 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	bk.Start()
	stopped := false
	defer func() {
		if !stopped {
			bk.Stop()
		}
	}()
	fe := core.NewFrontend(core.FrontendOptions{ID: 1, Mode: core.ModeR(), Profile: &zprof})
	conn, err := fe.Connect(bk)
	if err != nil {
		t.Fatal(err)
	}

	// Logs far smaller than the workload: ~1500 ops of ~100 B against a
	// 32 KiB memory log force a dozen wraps.
	opts := Options{Buckets: 64, Create: core.CreateOptions{MemLogSize: 32 << 10, OpLogSize: 16 << 10}}
	ht, err := CreateHashTable(conn, "wrap", opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	oracle := make(map[uint64][]byte)
	const ops = 1500
	for i := 0; i < ops; i++ {
		k := uint64(rng.Intn(32)) + 1
		v := make([]byte, 16+rng.Intn(48))
		rng.Read(v)
		if err := ht.Put(k, v); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		oracle[k] = v
	}
	if err := ht.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n := st.Checkpoints.Load(); n == 0 {
		t.Fatal("workload several log sizes long produced no checkpoints")
	}
	if tb := st.TruncatedBytes.Load(); tb < 32<<10 {
		t.Fatalf("truncated only %d bytes; the memory log alone must have been reclaimed at least once", tb)
	}
	for k, want := range oracle {
		got, ok, err := ht.Get(k)
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("key %d after wraps: ok=%v err=%v got %d bytes", k, ok, err, len(got))
		}
	}

	// Power-fail: recovery over the wrapped log must resume from the
	// newest checkpoint and replay a suffix bounded by the checkpoint
	// interval — not the full workload history (which no longer exists:
	// the dead prefix was scrubbed).
	bk.Halt()
	stopped = true
	dev.Crash(nil)
	st2 := &stats.Stats{}
	bk2, err := backend.New(dev, backend.Options{ID: 0, Profile: &zprof, Stats: st2,
		Compact: &backend.CompactConfig{Interval: 4 << 10}})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	bk2.Start()
	defer bk2.Stop()
	fe2 := core.NewFrontend(core.FrontendOptions{ID: 2, Mode: core.ModeR(), Profile: &zprof})
	conn2, err := fe2.Connect(bk2)
	if err != nil {
		t.Fatalf("reconnect: %v", err)
	}
	raw, err := conn2.Open("wrap", true)
	if err != nil {
		t.Fatalf("raw open: %v", err)
	}
	if err := raw.BreakLock(1); err != nil {
		t.Fatalf("break lock: %v", err)
	}
	ht2, err := OpenHashTable(conn2, "wrap", true, opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := ht2.Drain(); err != nil {
		t.Fatalf("drain after recovery: %v", err)
	}
	for k, want := range oracle {
		got, ok, err := ht2.Get(k)
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("key %d after recovery: ok=%v err=%v got %d bytes", k, ok, err, len(got))
		}
	}
	if rro := st2.RecoveryReplayOps.Load(); rro > ops/2 {
		t.Errorf("recovery replayed %d transactions of a %d-op history; suffix not bounded by the checkpoint interval", rro, ops)
	}
}
