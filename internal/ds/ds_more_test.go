package ds

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"asymnvm/internal/core"
)

func TestMVBPTreeDeepSplits(t *testing.T) {
	r := newRig(t)
	c := r.conn(1, core.ModeRCB(16<<20, 64))
	mv, err := CreateMVBPTree(c, "mvdeep", Options{Create: core.CreateOptions{MemLogSize: 16 << 20, OpLogSize: 4 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	n := 3000
	for i := 1; i <= n; i++ {
		if err := mv.Put(uint64(i), val(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := mv.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		got, ok, err := mv.Get(uint64(i))
		if err != nil || !ok || !bytes.Equal(got, val(i)) {
			t.Fatalf("get %d: ok=%v err=%v", i, ok, err)
		}
	}
	// Updates install fresh versions without losing neighbours.
	for i := 1; i <= n; i += 7 {
		if err := mv.Put(uint64(i), val(100000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := mv.Drain(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		want := val(i)
		if i%7 == 1 {
			want = val(100000 + i)
		}
		got, ok, _ := mv.Get(uint64(i))
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("after updates, key %d wrong", i)
		}
	}
	_ = mv.Close()
}

// Property: any mix of pushes and pops, batched, matches a slice model —
// including the annihilation fast path.
func TestQuickStackModel(t *testing.T) {
	f := func(seed int64) bool {
		r := newRig(t)
		c := r.conn(1, core.ModeRCB(1<<20, 32))
		s, err := CreateStack(c, "qs", Options{Create: testCreate})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		var model [][]byte
		for i := 0; i < 300; i++ {
			if rng.Intn(2) == 0 {
				v := val(rng.Intn(10000))
				if err := s.Push(v); err != nil {
					return false
				}
				model = append(model, v)
			} else {
				v, ok, err := s.Pop()
				if err != nil {
					return false
				}
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					want := model[len(model)-1]
					model = model[:len(model)-1]
					if !bytes.Equal(v, want) {
						return false
					}
				}
			}
		}
		if s.Len() != len(model) {
			return false
		}
		// Drain and pop the remainder in order.
		if err := s.Drain(); err != nil {
			return false
		}
		for i := len(model) - 1; i >= 0; i-- {
			v, ok, err := s.Pop()
			if err != nil || !ok || !bytes.Equal(v, model[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestSkipListLevelDistribution(t *testing.T) {
	r := newRig(t)
	c := r.conn(1, core.ModeRC(8<<20))
	sl, err := CreateSkipList(c, "levels", Options{Create: testCreate})
	if err != nil {
		t.Fatal(err)
	}
	levels := map[int]int{}
	for i := 0; i < 4000; i++ {
		levels[sl.randomLevel()]++
	}
	// p=0.5: roughly half the towers have height 1, a quarter height 2…
	if levels[1] < 1500 || levels[1] > 2500 {
		t.Fatalf("level-1 towers: %d of 4000 (want ≈2000)", levels[1])
	}
	if levels[2] < 700 || levels[2] > 1300 {
		t.Fatalf("level-2 towers: %d of 4000 (want ≈1000)", levels[2])
	}
	for l := range levels {
		if l < 1 || l > SkipListMaxLevel {
			t.Fatalf("tower height %d out of range", l)
		}
	}
}

func TestSkipListOrderedTraversalAfterDrain(t *testing.T) {
	r := newRig(t)
	c := r.conn(1, core.ModeRC(8<<20))
	sl, err := CreateSkipList(c, "ordered", Options{Create: testCreate})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	keys := map[uint64]bool{}
	for i := 0; i < 800; i++ {
		k := uint64(rng.Intn(100000)) + 1
		if err := sl.Put(k, val(int(k))); err != nil {
			t.Fatal(err)
		}
		keys[k] = true
	}
	if err := sl.Drain(); err != nil {
		t.Fatal(err)
	}
	// Walk level 0 from the sentinel: keys must be strictly ascending and
	// complete.
	cur, err := sl.readNode(sl.head)
	if err != nil {
		t.Fatal(err)
	}
	prev := uint64(0)
	count := 0
	for addr := cur.next[0]; addr != 0; {
		n, err := sl.readNode(addr)
		if err != nil {
			t.Fatal(err)
		}
		if n.key <= prev {
			t.Fatalf("ordering violated: %d after %d", n.key, prev)
		}
		if !keys[n.key] {
			t.Fatalf("phantom key %d", n.key)
		}
		prev = n.key
		count++
		addr = n.next[0]
	}
	if count != len(keys) {
		t.Fatalf("level-0 walk found %d keys, want %d", count, len(keys))
	}
	_ = sl.Close()
}

func TestQueueBatchedReopenKeepsOrder(t *testing.T) {
	r := newRig(t)
	c := r.conn(1, core.ModeRCB(1<<20, 16))
	q, err := CreateQueue(c, "qbr", Options{Create: testCreate})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		_ = q.Enqueue(val(i))
	}
	// Dequeue a few before closing so head != first node.
	for i := 0; i < 7; i++ {
		if _, ok, err := q.Dequeue(); !ok || err != nil {
			t.Fatalf("dequeue: %v %v", ok, err)
		}
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	c2 := r.conn(2, core.ModeR())
	q2, err := OpenQueue(c2, "qbr", Options{Create: testCreate})
	if err != nil {
		t.Fatal(err)
	}
	if q2.Len() != 33 {
		t.Fatalf("reopened len %d, want 33", q2.Len())
	}
	for i := 7; i < 40; i++ {
		v, ok, err := q2.Dequeue()
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("order broken at %d: %q", i, v)
		}
	}
	_ = q2.Close()
}

func TestFlatCacheOptionStillCorrect(t *testing.T) {
	r := newRig(t)
	c := r.conn(1, core.ModeRC(1<<20))
	bt, err := CreateBST(c, "flat", Options{Create: testCreate, FlatCache: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 300; i++ {
		if err := bt.Put(uint64(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 300; i++ {
		got, ok, _ := bt.Get(uint64(i))
		if !ok || !bytes.Equal(got, val(i)) {
			t.Fatalf("flat-cache tree lost key %d", i)
		}
	}
	_ = bt.Close()
}

func TestLockPerOpMode(t *testing.T) {
	r := newRig(t)
	c := r.conn(1, core.ModeR())
	bt, err := CreateBST(c, "perop", Options{Create: testCreate, LockPerOp: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		if err := bt.Put(uint64(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	// The lock is free between operations: another writer can take it.
	c2 := r.conn(2, core.ModeR())
	h2, err := c2.Open("perop", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.WriterLock(); err != nil {
		t.Fatal(err)
	}
	if err := h2.WriterUnlock(); err != nil {
		t.Fatal(err)
	}
	got, ok, _ := bt.Get(25)
	if !ok || !bytes.Equal(got, val(25)) {
		t.Fatal("per-op locked tree lost data")
	}
}

func TestValueTooLargeRejected(t *testing.T) {
	r := newRig(t)
	c := r.conn(1, core.ModeR())
	bt, err := CreateBST(c, "big", Options{Create: testCreate, ValueCap: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := bt.Put(1, make([]byte, 64)); err != ErrValueTooLarge {
		t.Fatalf("want ErrValueTooLarge, got %v", err)
	}
	st, err := CreateStack(c, "bigstack", Options{Create: testCreate, ValueCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Push(make([]byte, 64)); err != ErrValueTooLarge {
		t.Fatalf("want ErrValueTooLarge, got %v", err)
	}
}
