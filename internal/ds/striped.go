package ds

import (
	"encoding/binary"
	"fmt"

	"asymnvm/internal/backend"
	"asymnvm/internal/core"
)

// Striping: beyond SWMR. A striped structure splits one logical key space
// into N sub-structures ("stripes") on the SAME back-end, each with its
// own writer lock word, lock-ahead log, memory/op logs and seqlock — "N
// independent lock words + per-stripe memory logs in the naming space".
// Where Partitioned (§8.3) spreads partitions across back-ends so one
// writer scales its verbs out, striping exists so several front-ends can
// write ONE structure concurrently: writers contend per stripe, not per
// structure.
//
// Stripe writer locks are shared locks (core.SetSharedWriter): releasing
// drains the stripe and persists exact tail hints; acquiring adopts those
// tails and invalidates the per-stripe cache tag, so the lock word hands
// the whole log-append role from front-end to front-end. Multi-stripe
// operations (PutMulti/AddMulti) take their stripe locks in global
// (backend, slot) order — a total order, so overlapping stripe sets
// cannot deadlock — and recovery after a writer death is per stripe: the
// stripe's lock-ahead log names the dead holder, BreakLock frees the
// word, and reopening the child scans its own logs (see the crash
// matrix's striped rows).
//
// Attaching a writer must happen at a quiescent point (no operation in
// flight on the structure), the same discipline every writer open in the
// framework requires; once attached, concurrent operation is safe.
//
// The stripe count is persisted in a TypeStriped meta entry through the
// log path (mirrors see the mapping); stripe i lives under "<name>~<i>".
// The meta additionally carries a version word and a moved-to word (see
// migrate.go): re-homing a striped structure to another back-end streams
// every stripe's history to a same-named structure there, then stamps
// moved-to on the source so later opens are redirected with
// core.ErrMoved. Because stripe writer locks are shared, the handoff
// requires the quiesce discipline every writer attach does: other
// front-ends must detach before Cutover and re-attach at the new home.

// Striped routes KV operations to per-stripe instances whose writer
// locks are shared between front-ends.
type Striped struct {
	name    string
	meta    *core.Handle
	conn    *core.Conn
	kind    KVKind
	opts    Options
	stripes []KV
	hs      []*core.Handle
	bits    uint

	version uint64
	moved   bool     // set at cutover on the superseded source
	mig     *Striped // double-log destination while a handoff streams
}

// stripeOf maps a key to a stripe by hashed key range: the top bits of
// the golden-ratio-scrambled key, so dense integer key populations still
// spread uniformly while each stripe owns one contiguous range of the
// hashed space.
func stripeOf(key uint64, bits uint) int {
	return int((key * 0x9E3779B97F4A7C15) >> (64 - bits))
}

func stripeName(name string, i int) string { return fmt.Sprintf("%s~%d", name, i) }

// CreateStriped creates a striped structure with the given power-of-two
// stripe count on one back-end connection and records {kind, stripes} in
// a TypeStriped meta entry.
func CreateStriped(c *core.Conn, kind KVKind, name string, stripes int, opts Options) (*Striped, error) {
	if stripes <= 0 || stripes > 1<<12 || stripes&(stripes-1) != 0 {
		return nil, fmt.Errorf("ds: stripe count must be a power of two in [1, 4096], got %d", stripes)
	}
	meta, err := c.Create(name, backend.TypeStriped, core.CreateOptions{MemLogSize: 64 << 10, OpLogSize: 64 << 10})
	if err != nil {
		return nil, err
	}
	var b [32]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(kind))
	binary.LittleEndian.PutUint64(b[8:16], uint64(stripes))
	binary.LittleEndian.PutUint64(b[16:24], 1) // meta version
	// b[24:32] is the moved-to word, zero while this is the home.
	if err := meta.Write(meta.AuxAddr()+backend.AuxUser, b[:]); err != nil {
		return nil, err
	}
	if err := meta.Flush(); err != nil {
		return nil, err
	}
	opts.LockPerOp = true
	s := &Striped{name: name, meta: meta, conn: c, kind: kind, opts: opts, bits: log2(stripes), version: 1}
	for i := 0; i < stripes; i++ {
		kv, err := createKV(c, kind, stripeName(name, i), opts)
		if err != nil {
			return nil, err
		}
		h, err := kvHandle(kv)
		if err != nil {
			return nil, err
		}
		h.SetSharedWriter(true)
		// Creation wrote the stripe's initial state outside any lock
		// bracket; one acquire/release cycle drains it and persists exact
		// tail hints, so the first real acquisition (possibly by another
		// front-end) resyncs from true tails.
		if err := h.WriterLock(); err != nil {
			return nil, err
		}
		if err := h.WriterUnlock(); err != nil {
			return nil, err
		}
		s.stripes = append(s.stripes, kv)
		s.hs = append(s.hs, h)
	}
	return s, nil
}

// OpenStriped attaches to a striped structure. Writer attachments scan
// each stripe's logs for exact tails (the open-time recovery path) and
// then contend per stripe through the shared lock protocol.
func OpenStriped(c *core.Conn, name string, writer bool, opts Options) (*Striped, error) {
	meta, err := c.Open(name, false)
	if err != nil {
		return nil, err
	}
	mb, err := meta.Read(meta.AuxAddr()+backend.AuxUser, 32, false)
	if err != nil {
		return nil, err
	}
	kind := KVKind(binary.LittleEndian.Uint64(mb[:8]))
	stripes := int(binary.LittleEndian.Uint64(mb[8:16]))
	version := binary.LittleEndian.Uint64(mb[16:24])
	movedTo := binary.LittleEndian.Uint64(mb[24:32])
	if stripes <= 0 || stripes > 1<<12 || stripes&(stripes-1) != 0 {
		return nil, fmt.Errorf("ds: corrupt stripe meta (stripes=%d)", stripes)
	}
	if movedTo != 0 {
		return nil, fmt.Errorf("ds: striped structure %q re-homed to back-end %d: %w",
			name, movedTo-1, core.ErrMoved)
	}
	opts.LockPerOp = true
	s := &Striped{name: name, meta: meta, conn: c, kind: kind, opts: opts, bits: log2(stripes), version: version}
	for i := 0; i < stripes; i++ {
		kv, err := openKV(c, kind, stripeName(name, i), writer, opts)
		if err != nil {
			return nil, err
		}
		h, err := kvHandle(kv)
		if err != nil {
			return nil, err
		}
		if writer {
			h.SetSharedWriter(true)
		}
		s.stripes = append(s.stripes, kv)
		s.hs = append(s.hs, h)
	}
	return s, nil
}

// kvHandle extracts the core handle every concrete structure exposes.
func kvHandle(kv KV) (*core.Handle, error) {
	type handled interface{ Handle() *core.Handle }
	hk, ok := kv.(handled)
	if !ok {
		return nil, fmt.Errorf("ds: %T exposes no handle", kv)
	}
	return hk.Handle(), nil
}

func log2(n int) uint {
	var b uint
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// StripeIndex reports which stripe owns key.
func (s *Striped) StripeIndex(key uint64) int { return stripeOf(key, s.bits) }

// Stripes reports the stripe count.
func (s *Striped) Stripes() int { return len(s.stripes) }

// Stripe exposes one stripe instance.
func (s *Striped) Stripe(i int) KV { return s.stripes[i] }

// Handles exposes the per-stripe core handles (tests and recovery
// tooling address stripe locks individually).
func (s *Striped) Handles() []*core.Handle { return s.hs }

// Put routes to the owning stripe; the per-operation lock bracket
// acquires that stripe's shared writer lock around the write. During a
// handoff's double-log window the destination stripe receives the write
// too (the live log suffix of the migration stream).
func (s *Striped) Put(key uint64, val []byte) error {
	if s.moved {
		return fmt.Errorf("ds: striped structure %q: %w", s.name, core.ErrMoved)
	}
	if err := s.stripes[s.StripeIndex(key)].Put(key, val); err != nil {
		return err
	}
	if s.mig != nil {
		if err := s.mig.Put(key, val); err != nil {
			return fmt.Errorf("ds: double-log to migration destination: %w", err)
		}
		s.meta.Conn().Frontend().Stats().DoubleLoggedOps.Add(1)
	}
	return nil
}

// Get routes to the owning stripe (readers run that stripe's seqlock).
func (s *Striped) Get(key uint64) ([]byte, bool, error) {
	if s.moved {
		return nil, false, fmt.Errorf("ds: striped structure %q: %w", s.name, core.ErrMoved)
	}
	return s.stripes[s.StripeIndex(key)].Get(key)
}

// GetMulti looks up a batch of keys stripe by stripe.
func (s *Striped) GetMulti(keys []uint64) ([][]byte, []bool, error) {
	vals := make([][]byte, len(keys))
	found := make([]bool, len(keys))
	for i, k := range keys {
		v, ok, err := s.Get(k)
		if err != nil {
			return nil, nil, err
		}
		vals[i], found[i] = v, ok
	}
	return vals, found, nil
}

// lockSet collects the distinct stripe handles a key batch touches.
func (s *Striped) lockSet(keys []uint64) []*core.Handle {
	seen := make(map[int]bool, len(keys))
	var hs []*core.Handle
	for _, k := range keys {
		si := s.StripeIndex(k)
		if !seen[si] {
			seen[si] = true
			hs = append(hs, s.hs[si])
		}
	}
	return hs
}

// PutMulti writes a batch atomically with respect to other multi-stripe
// operations: every involved stripe's lock is taken in global order
// before the first write and released only after the last, so two
// concurrent batches serialize instead of deadlocking or interleaving.
func (s *Striped) PutMulti(keys []uint64, vals [][]byte) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("ds: striped putmulti: %d keys, %d values", len(keys), len(vals))
	}
	hs := s.lockSet(keys)
	if err := core.LockOrdered(hs...); err != nil {
		return err
	}
	var firstErr error
	for i, k := range keys {
		if err := s.Put(k, vals[i]); err != nil {
			firstErr = err
			break
		}
	}
	if err := core.UnlockOrdered(hs...); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// AddMulti atomically increments 8-byte little-endian counters at the
// given keys (missing keys start at zero): a read-modify-write batch
// under the ordered stripe lock set. Concurrent AddMulti batches over
// overlapping keys serialize on their common stripes, so no increment is
// ever lost — the property the ordered-acquisition stress test pins.
func (s *Striped) AddMulti(keys []uint64, delta uint64) error {
	hs := s.lockSet(keys)
	if err := core.LockOrdered(hs...); err != nil {
		return err
	}
	var firstErr error
	for _, k := range keys {
		cur, ok, err := s.Get(k)
		if err != nil {
			firstErr = err
			break
		}
		var v uint64
		if ok && len(cur) >= 8 {
			v = binary.LittleEndian.Uint64(cur)
		}
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v+delta)
		if err := s.Put(k, b[:]); err != nil {
			firstErr = err
			break
		}
	}
	if err := core.UnlockOrdered(hs...); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Flush flushes every stripe (writers flush inside their lock brackets,
// so this matters only for buffered batch state).
func (s *Striped) Flush() error {
	for _, kv := range s.stripes {
		if err := kv.Flush(); err != nil {
			return err
		}
	}
	return nil
}
