# Developer entry points. `make check` is the pre-merge gate: static
# checks, the full race-enabled test suite, and the fixed-seed chaos
# soak (5000 ops under crashes, partitions and truncations; exits
# non-zero on any invariant violation).

GO ?= go

.PHONY: all build vet test race chaos check bench bench-smoke

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

chaos: build
	$(GO) run ./cmd/asymnvm-chaos -seed 1 -ops 5000

check: vet build race chaos

bench:
	$(GO) test -bench=. -benchmem ./internal/bench/

# A fast CI-sized slice of the benchmark suite: the posted-verb pipeline
# sweep at reduced population, regenerating BENCH_pipeline.json.
bench-smoke: build
	$(GO) run ./cmd/asymnvm-bench -exp pipeline -scale quick -seed 1000 -ops 800 -json BENCH_pipeline.smoke.json
