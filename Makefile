# Developer entry points. `make check` is the pre-merge gate: static
# checks, the full race-enabled test suite, and the fixed-seed chaos
# soak (5000 ops under crashes, partitions and truncations; exits
# non-zero on any invariant violation).

GO ?= go

.PHONY: all build vet test race chaos chaos-race cover check bench bench-cpu bench-smoke bench-compare

# Minimum cross-package statement coverage (see `make cover`). Raise it
# when coverage rises; never lower it to merge.
COVER_FLOOR ?= 75.0

all: check

build:
	$(GO) build ./...

# go vet always; staticcheck when installed (CI installs it — see
# .github/workflows/ci.yml — so the gate is enforced there even when a
# local checkout lacks the binary).
vet:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

chaos: build
	$(GO) run ./cmd/asymnvm-chaos -seed 1 -ops 5000

# A reduced-op chaos soak with the race detector on: every crash,
# failover and partition path runs under -race. -determinism runs each
# soak twice inside the binary and fails on the first divergent report
# line: with compaction on the post-recovery state must be a function of
# the durable log bytes alone, and with -serve the whole workload rides
# the TCP service (admission, run queue, executor) and must still be
# byte-identical per seed. -txcross partitions the bank across two
# back-ends with cross-shard 2PC transfers, so the conservation check
# covers cross-partition atomicity under the same contract. -multiwriter
# alternates two writer front-ends over one striped table through shared
# stripe locks and re-verifies every checkpoint through a mirror replica.
# -rebalance interleaves partition handoffs (begin/stream and
# cutover/finish split across steps) with the workload, crashes and
# truncations, and checks committed keys against a fresh reader routed
# by the persisted versioned map.
chaos-race: build
	$(GO) run -race ./cmd/asymnvm-chaos -seed 1 -ops 2000
	$(GO) run -race ./cmd/asymnvm-chaos -seed 1 -ops 2000 -compact -determinism
	$(GO) run -race ./cmd/asymnvm-chaos -seed 3 -ops 1000 -serve -determinism
	$(GO) run -race ./cmd/asymnvm-chaos -seed 5 -ops 1200 -txcross -determinism
	$(GO) run -race ./cmd/asymnvm-chaos -seed 7 -ops 1200 -multiwriter -promotes 0 -determinism
	$(GO) run -race ./cmd/asymnvm-chaos -seed 9 -ops 1200 -rebalance -promotes 0 -determinism

# Cross-package statement coverage with a hard floor. -coverpkg=./... so
# packages exercised only through other packages' tests (trace, stats,
# obshttp) still count.
cover:
	$(GO) test -coverpkg=./... -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit !(t+0 >= f+0) }' || \
		{ echo "coverage $$total% fell below the floor of $(COVER_FLOOR)%"; exit 1; }

check: vet build race chaos

bench:
	$(GO) test -bench=. -benchmem ./internal/bench/

# Wall-clock hot-path microbenchmarks (rings, doorbells, zero-alloc
# codecs) at a fixed iteration count: fast, and allocs/op is exact and
# host-independent even though ns/op is not.
bench-cpu: build
	$(GO) test -run NONE -bench Hotpath -benchtime=100x -benchmem ./internal/bench/

# A fast CI-sized slice of the benchmark suite: the posted-verb pipeline
# sweep at reduced population, plus the cross-shard scale-out sweep
# regenerated at the checked-in BENCH_scaleout.json's exact scale and
# compared against it — the virtual clock makes the numbers host
# independent, so any drift beyond the threshold is a real change.
bench-smoke: build
	$(GO) run ./cmd/asymnvm-bench -exp pipeline -scale quick -seed 1000 -ops 800 -json BENCH_pipeline.smoke.json
	$(GO) run ./cmd/asymnvm-bench -exp scaleout -scale quick -seed 800 -ops 600 -json BENCH_scaleout.smoke.json
	$(GO) run ./cmd/asymnvm-benchcmp -base BENCH_scaleout.json -head BENCH_scaleout.smoke.json
	$(GO) run ./cmd/asymnvm-bench -exp tx2pc -scale quick -seed 500 -ops 400 -json BENCH_tx2pc.smoke.json
	$(GO) run ./cmd/asymnvm-benchcmp -base BENCH_tx2pc.json -head BENCH_tx2pc.smoke.json
	$(GO) run ./cmd/asymnvm-bench -exp multiwriter -scale quick -seed 400 -ops 240 -json BENCH_multiwriter.smoke.json
	$(GO) run ./cmd/asymnvm-benchcmp -base BENCH_multiwriter.json -head BENCH_multiwriter.smoke.json -max-regress 25
	$(GO) run ./cmd/asymnvm-bench -exp recovery -scale quick -ops 400 -json BENCH_recovery.smoke.json
	$(GO) run ./cmd/asymnvm-benchcmp -base BENCH_recovery.json -head BENCH_recovery.smoke.json
	$(GO) run ./cmd/asymnvm-bench -exp overload -scale quick -ops 600 -json BENCH_overload.smoke.json
	$(GO) run ./cmd/asymnvm-benchcmp -base BENCH_overload.json -head BENCH_overload.smoke.json
	$(GO) run ./cmd/asymnvm-bench -exp rebalance -scale quick -seed 2048 -ops 1024 -keys 2048 -json BENCH_rebalance.smoke.json
	$(GO) run ./cmd/asymnvm-benchcmp -base BENCH_rebalance.json -head BENCH_rebalance.smoke.json
	$(GO) run ./cmd/asymnvm-bench -exp hotpath -json BENCH_hotpath.smoke.json
	$(GO) run ./cmd/asymnvm-benchcmp -base BENCH_hotpath.json -head BENCH_hotpath.smoke.json -max-regress 60

# Diff two BENCH_*.json dumps; fails on a >10% KOPS regression.
# Usage: make bench-compare BASE=old.json HEAD=new.json
BASE ?= BENCH_scaleout.json
HEAD ?= BENCH_scaleout.smoke.json
bench-compare: build
	$(GO) run ./cmd/asymnvm-benchcmp -base $(BASE) -head $(HEAD)
