// Command asymnvm-benchcmp diffs two BENCH_*.json row dumps produced by
// asymnvm-bench -json and fails when throughput regresses. Rows are
// matched by (Experiment, Series, Label, X); the tool exits non-zero if
// any matched row's KOPS fell by more than the allowed percentage, or if
// the head file lost rows the base file had. Because the benchmarks run
// on the virtual clock, two runs of the same code produce identical
// numbers — any delta is a real model or code change, not host noise.
//
// Usage:
//
//	asymnvm-benchcmp -base BENCH_scaleout.json -head BENCH_scaleout.smoke.json
//	asymnvm-benchcmp -base old.json -head new.json -max-regress 5
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"asymnvm/internal/bench"
)

func rowKey(r bench.Row) string {
	return fmt.Sprintf("%s|%s|%s|%g", r.Experiment, r.Series, r.Label, r.X)
}

func load(path string) (map[string]bench.Row, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []bench.Row
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]bench.Row, len(rows))
	for _, r := range rows {
		m[rowKey(r)] = r
	}
	return m, nil
}

func main() {
	basePath := flag.String("base", "", "baseline BENCH_*.json")
	headPath := flag.String("head", "", "candidate BENCH_*.json to compare against the baseline")
	maxRegress := flag.Float64("max-regress", 10, "maximum tolerated KOPS drop in percent")
	flag.Parse()
	if *basePath == "" || *headPath == "" {
		fmt.Fprintln(os.Stderr, "asymnvm-benchcmp: -base and -head are both required")
		os.Exit(2)
	}
	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asymnvm-benchcmp: %v\n", err)
		os.Exit(2)
	}
	head, err := load(*headPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asymnvm-benchcmp: %v\n", err)
		os.Exit(2)
	}

	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	failures := 0
	compared := 0
	for _, k := range keys {
		b := base[k]
		h, ok := head[k]
		if !ok {
			fmt.Printf("MISSING %-40s base=%.1f KOPS, row absent from %s\n", k, b.KOPS, *headPath)
			failures++
			continue
		}
		if b.KOPS <= 0 {
			continue // non-throughput row (cost model, CPU util)
		}
		compared++
		delta := (h.KOPS - b.KOPS) / b.KOPS * 100
		status := "ok"
		if delta < -*maxRegress {
			status = "REGRESS"
			failures++
		}
		fmt.Printf("%-7s %-40s base=%.1f head=%.1f (%+.1f%%)\n", status, k, b.KOPS, h.KOPS, delta)
	}
	fmt.Printf("%d rows compared, %d failures (threshold %.0f%%)\n", compared, failures, *maxRegress)
	if failures > 0 {
		os.Exit(1)
	}
}
