// Command asymnvm-chaos runs the deterministic fault soak: a mixed
// smallbank + hash-table workload against a one-back-end cluster while
// the fault plane injects verb drops, mid-transfer truncations, delays,
// partitions, back-end crashes (with mirror promotion) and restarts —
// checking durability and consistency invariants after every recovery.
//
// The whole run is a pure function of -seed: two invocations with the
// same flags print byte-identical reports, including the fault event
// log. Exit status is non-zero when any invariant was violated.
//
// With -serve every workload operation is routed through the networked
// front-end service (internal/serve) instead of direct calls, so the
// admission/queue/executor path is soaked under fault injection.
//
// With -determinism the soak runs twice with identical configuration
// and the two reports are compared line by line, along with the fault
// event digest and the final stats snapshot: the first divergence is
// printed and the exit status is non-zero. This is the reproducibility
// contract as a command.
//
// With -txcross the smallbank is partitioned across two back-ends and
// transfers spanning partitions commit under cross-shard 2PC; the money
// conservation check then covers cross-partition atomicity.
//
// With -multiwriter the hash table becomes a striped table written
// alternately by two front-ends through per-stripe shared writer locks,
// and every verification additionally reads the committed keys back
// through a mirror replica with a zero-staleness-after-sync assertion.
// Requires -promotes 0.
//
// With -rebalance the hash table becomes an elastic partitioned table
// spread over two back-ends, and partition migrations run continuously
// under the workload: double-log windows stay open across live writes,
// cutovers flip the versioned map mid-soak, and every verification
// re-routes through the persisted map. Requires -promotes 0.
//
// Usage:
//
//	asymnvm-chaos -seed 1 -ops 5000
//	asymnvm-chaos -seed 7 -ops 2000 -drop 0.02 -v
//	asymnvm-chaos -seed 3 -ops 2000 -serve -determinism
package main

import (
	"flag"
	"fmt"
	"os"

	"asymnvm/internal/chaos"
	"asymnvm/internal/core"
	"asymnvm/internal/obshttp"
	"asymnvm/internal/trace"
)

func main() {
	cfg := chaos.DefaultConfig()
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "fault plane and workload seed")
	flag.IntVar(&cfg.Ops, "ops", cfg.Ops, "workload operations")
	acct := flag.Uint64("accounts", cfg.Accounts, "smallbank accounts")
	keys := flag.Uint64("keys", cfg.Keys, "hash-table key space")
	flag.IntVar(&cfg.Mirrors, "mirrors", cfg.Mirrors, "replica mirrors (promotion candidates)")
	flag.IntVar(&cfg.Promotes, "promotes", cfg.Promotes, "scheduled permanent crashes (mirror promotions)")
	flag.IntVar(&cfg.Restarts, "restarts", cfg.Restarts, "scheduled crash-restarts")
	flag.IntVar(&cfg.Partitions, "partitions", cfg.Partitions, "scheduled partition windows")
	flag.Float64Var(&cfg.DropProb, "drop", cfg.DropProb, "per-verb drop probability")
	flag.Float64Var(&cfg.TruncateProb, "trunc", cfg.TruncateProb, "per-verb truncation probability")
	flag.Float64Var(&cfg.DelayProb, "delay", cfg.DelayProb, "per-verb delay probability")
	flag.IntVar(&cfg.MirrorLag, "lag", cfg.MirrorLag, "mirror replication lag in kicks")
	flag.IntVar(&cfg.Pipeline, "pipeline", cfg.Pipeline, "writer send-queue depth (>1 enables posted verbs)")
	flag.BoolVar(&cfg.AutoTune, "autotune", cfg.AutoTune, "enable the adaptive batch/depth controller on the writer")
	flag.BoolVar(&cfg.Compact, "compact", cfg.Compact, "run every back-end incarnation with log compaction on")
	flag.BoolVar(&cfg.Rebuild, "rebuild", cfg.Rebuild, "end with an archive-replay rebuild check")
	flag.BoolVar(&cfg.Serve, "serve", cfg.Serve, "route the workload through the TCP front-end service")
	flag.BoolVar(&cfg.TxCross, "txcross", cfg.TxCross, "partition the bank across two back-ends with cross-shard 2PC transfers")
	flag.BoolVar(&cfg.MultiWriter, "multiwriter", cfg.MultiWriter, "alternate two writer front-ends over one striped table and verify through a mirror replica (requires -promotes 0)")
	flag.BoolVar(&cfg.Rebalance, "rebalance", cfg.Rebalance, "run continuous elastic partition migrations across two back-ends under the workload (requires -promotes 0)")
	flag.BoolVar(&cfg.Verbose, "v", cfg.Verbose, "print every injected fault event")
	determinism := flag.Bool("determinism", false, "run twice and fail on the first divergent report line")
	doTrace := flag.Bool("trace", false, "record a span trace of the soak")
	traceOut := flag.String("trace-out", "", "write the chrome://tracing JSON to this file (implies -trace)")
	httpAddr := flag.String("http", "", "serve /metrics, /debug/trace and /debug/flame on this address while the soak runs")
	flag.Parse()
	cfg.Accounts = *acct
	cfg.Keys = *keys

	if *traceOut != "" || *httpAddr != "" {
		*doTrace = true
	}
	if *doTrace {
		cfg.Tracer = trace.New()
	}
	var srv *obshttp.Server
	if *httpAddr != "" {
		srv = obshttp.New(cfg.Tracer)
		cfg.OnFrontend = func(fe *core.Frontend) { srv.AddStats("fe001", fe.Stats()) }
		_, addr, err := srv.Start(*httpAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asymnvm-chaos: http: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("serving /metrics, /debug/trace, /debug/flame on %s\n", addr)
	}

	rep, err := chaos.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asymnvm-chaos: %v\n", err)
		os.Exit(2)
	}
	fmt.Print(rep.String())
	if *determinism {
		rep2, err := chaos.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asymnvm-chaos: determinism rerun: %v\n", err)
			os.Exit(2)
		}
		// DiffReports also compares the final stats snapshot — a
		// scheduling leak can drift a counter while the report text
		// stays byte-identical.
		if desc, diverged := chaos.DiffReports(rep, rep2); diverged {
			fmt.Fprintf(os.Stderr, "asymnvm-chaos: determinism FAILED: %s\n", desc)
			os.Exit(1)
		}
		fmt.Printf("determinism: %d report lines, digest and stats identical across two runs\n", len(rep.Lines))
	}
	if *traceOut != "" {
		if err := os.WriteFile(*traceOut, cfg.Tracer.ChromeJSON(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "asymnvm-chaos: writing %s: %v\n", *traceOut, err)
			os.Exit(2)
		}
	}
	if rep.Violations > 0 {
		fmt.Fprintf(os.Stderr, "asymnvm-chaos: %d invariant violation(s)\n", rep.Violations)
		os.Exit(1)
	}
}

