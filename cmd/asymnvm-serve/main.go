// Command asymnvm-serve runs the networked front-end service: a TCP
// server exposing get/put/getmulti/putmulti/tx over a simulated AsymNVM
// cluster, with per-tenant admission control, deadline propagation into
// the core retry loop, and bounded-queue load shedding.
//
// With -loadgen it instead drives the same admission/queue/deadline
// plane through the deterministic open-loop simulator and prints the
// goodput summary — the overload experiment at the command line.
//
// Usage:
//
//	asymnvm-serve -listen 127.0.0.1:4700 -http 127.0.0.1:8080
//	asymnvm-serve -loadgen -scenario flash -factor 2 -duration 500ms
//	asymnvm-serve -loadgen -scenario diurnal -rate 150000 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"asymnvm/internal/cluster"
	"asymnvm/internal/core"
	"asymnvm/internal/ds"
	"asymnvm/internal/obshttp"
	"asymnvm/internal/serve"
	"asymnvm/internal/txapp"
	"asymnvm/internal/workload"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:4700", "TCP service address")
	httpAddr := flag.String("http", "", "serve /metrics and /healthz on this address")
	pprofFlag := flag.Bool("pprof", false, "also mount /debug/pprof on the -http address (opt-in: exposes goroutine stacks and CPU profiles)")
	loadgen := flag.Bool("loadgen", false, "run the open-loop overload simulator instead of serving")
	scenario := flag.String("scenario", "const", "loadgen offered-load shape: const, diurnal, flash, slowclient")
	seed := flag.Int64("seed", 4242, "loadgen arrival/workload seed")
	rate := flag.Float64("rate", 0, "loadgen base offered rate in ops/s (0 = calibrate capacity and apply -factor)")
	factor := flag.Float64("factor", 1.5, "offered load as a multiple of calibrated capacity when -rate is 0")
	duration := flag.Duration("duration", 500*time.Millisecond, "loadgen virtual horizon")
	budget := flag.Duration("budget", 2*time.Millisecond, "per-request deadline budget (0 disables deadlines)")
	keys := flag.Uint64("keys", 16000, "hash-table key space")
	accounts := flag.Uint64("accounts", 400, "smallbank accounts")
	writePct := flag.Int("writepct", 30, "percent of requests that are puts")
	txPct := flag.Int("txpct", 10, "percent of requests that are smallbank transactions")
	theta := flag.Float64("theta", 0.9, "base Zipf key skew (0 = uniform)")
	slowFrac := flag.Float64("slowfrac", 0, "loadgen fraction of responses shed to slow clients")
	workers := flag.Int("workers", 1, "loadgen simulated service parallelism")
	queueCap := flag.Int("queuecap", 256, "run-queue capacity")
	tenants := flag.Int("tenants", 4, "tenant count (round-robin)")
	capacity := flag.Int("capacity", 0, "fixed concurrency capacity (0 = follow the autotune depth gauge)")
	flag.Parse()

	if err := run(runConfig{
		listen: *listen, httpAddr: *httpAddr, pprof: *pprofFlag,
		loadgen: *loadgen, scenario: *scenario,
		seed: *seed, rate: *rate, factor: *factor,
		duration: *duration, budget: *budget,
		keys: *keys, accounts: *accounts,
		writePct: *writePct, txPct: *txPct, theta: *theta,
		slowFrac: *slowFrac, workers: *workers,
		queueCap: *queueCap, tenants: *tenants, capacity: *capacity,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "asymnvm-serve: %v\n", err)
		os.Exit(1)
	}
}

type runConfig struct {
	listen, httpAddr  string
	pprof             bool
	loadgen           bool
	scenario          string
	seed              int64
	rate, factor      float64
	duration, budget  time.Duration
	keys, accounts    uint64
	writePct, txPct   int
	theta, slowFrac   float64
	workers, queueCap int
	tenants, capacity int
}

// cell is one serving deployment: cluster, writer front-end, structures.
type cell struct {
	clu  *cluster.Cluster
	fe   *core.Frontend
	kv   *ds.HashTable
	bank *txapp.SmallBank
}

func newCell(rc runConfig) (*cell, error) {
	ccfg := cluster.DefaultConfig()
	clu, err := cluster.New(ccfg)
	if err != nil {
		return nil, err
	}
	fe, conns, err := clu.NewFrontend(1, core.Mode{OpLog: true, Batch: 4, Pipeline: 8})
	if err != nil {
		clu.Stop()
		return nil, err
	}
	opts := ds.Options{Buckets: 1 << 12, Create: core.CreateOptions{MemLogSize: 32 << 20, OpLogSize: 8 << 20}}
	kv, err := ds.CreateHashTable(conns[0], "serve-kv", opts)
	if err != nil {
		clu.Stop()
		return nil, err
	}
	bank, err := txapp.NewSmallBank(conns[0], "serve-bank", rc.accounts, opts)
	if err != nil {
		clu.Stop()
		return nil, err
	}
	return &cell{clu: clu, fe: fe, kv: kv, bank: bank}, nil
}

func (c *cell) loadgenConfig(rc runConfig) serve.LoadgenConfig {
	cfg := serve.LoadgenConfig{
		Seed:     rc.seed,
		Duration: rc.duration,
		Keys:     rc.keys,
		WritePct: rc.writePct,
		TxPct:    rc.txPct,
		Theta:    rc.theta,
		ValueLen: 64,
		SlowFrac: rc.slowFrac,
		Budget:   rc.budget,
		Workers:  rc.workers,
		QueueCap: rc.queueCap,
		LIFOFrac: 0.5,
		Tenants:  rc.tenants,
		Admission: serve.AdmissionConfig{
			BreakerTrip:     256,
			BreakerCooldown: time.Millisecond,
			RetryAfterMin:   100 * time.Microsecond,
		},
	}
	if rc.capacity > 0 {
		fixed := rc.capacity
		cfg.Admission.CapacityFn = func() int { return fixed }
	} else {
		cfg.Admission.CapacityFn = serve.CapacityFromAutoTune(c.fe, 8)
	}
	return cfg
}

func run(rc runConfig) error {
	c, err := newCell(rc)
	if err != nil {
		return err
	}
	defer c.clu.Stop()

	if rc.httpAddr != "" {
		srv := obshttp.New(nil)
		srv.AddStats("fe001", c.fe.Stats())
		for _, bk := range c.clu.Backends {
			srv.AddStats(fmt.Sprintf("bk%03d", bk.ID()), bk.Stats())
		}
		clu := c.clu
		srv.SetHealth("backends", func() (bool, string) {
			ok := true
			var lag uint64
			for _, h := range clu.Health() {
				if !h.OK() {
					ok = false
				}
				lag += h.ReplayLag
			}
			return ok, fmt.Sprintf("lag=%dB", lag)
		})
		if rc.pprof {
			srv.EnablePprof()
		}
		_, addr, err := srv.Start(rc.httpAddr)
		if err != nil {
			return fmt.Errorf("http: %w", err)
		}
		fmt.Printf("serving /metrics and /healthz on %s\n", addr)
	} else if rc.pprof {
		return fmt.Errorf("-pprof requires -http")
	}

	if rc.loadgen {
		return runLoadgen(c, rc)
	}
	return runServe(c, rc)
}

func runLoadgen(c *cell, rc runConfig) error {
	cfg := c.loadgenConfig(rc)
	base := rc.rate
	if base <= 0 {
		// No explicit rate: calibrate a twin cell (calibration ops would
		// pollute the measured cell's cache and logs) and offer
		// capacity × factor.
		cal, err := newCell(rc)
		if err != nil {
			return err
		}
		meanSvc, err := serve.Calibrate(cal.fe, cal.kv, cal.bank, cfg, 2000)
		cal.clu.Stop()
		if err != nil {
			return fmt.Errorf("calibration: %w", err)
		}
		base = float64(cfg.Workers) / meanSvc.Seconds() * rc.factor
		fmt.Printf("calibrated capacity %.1f kops, offering %.1f kops (%.2gx)\n",
			float64(cfg.Workers)/meanSvc.Seconds()/1e3, base/1e3, rc.factor)
	}
	switch rc.scenario {
	case "const":
		cfg.Sched = workload.ConstRate(base)
	case "diurnal":
		cfg.Sched = workload.Diurnal{Base: base, Amp: base / 2, Period: rc.duration / 2}
	case "flash":
		cfg.Sched = workload.Flash{Base: base / 2, Peak: base * 2, Start: rc.duration / 4, Dur: rc.duration / 4}
		cfg.HotTheta = 1.2
		cfg.HotStart = rc.duration / 4
		cfg.HotDur = rc.duration / 4
	case "slowclient":
		cfg.Sched = workload.ConstRate(base)
		if cfg.SlowFrac == 0 {
			cfg.SlowFrac = 0.05
		}
	default:
		return fmt.Errorf("unknown scenario %q (want const, diurnal, flash, slowclient)", rc.scenario)
	}
	res, err := serve.Loadgen(c.fe, c.kv, c.bank, cfg)
	if err != nil {
		return err
	}
	fmt.Println(res.String())
	return nil
}

func runServe(c *cell, rc runConfig) error {
	opts := serve.DefaultOptions()
	opts.QueueCap = rc.queueCap
	opts.Admission.BreakerTrip = 256
	opts.Admission.BreakerCooldown = time.Millisecond
	opts.Admission.RetryAfterMin = 100 * time.Microsecond
	if rc.capacity > 0 {
		fixed := rc.capacity
		opts.Admission.CapacityFn = func() int { return fixed }
	}
	s := serve.New(serve.Backends{FE: c.fe, KV: c.kv, Bank: c.bank}, opts)
	if err := s.Start(rc.listen); err != nil {
		return err
	}
	fmt.Printf("serving asymnvm protocol on %s (ctrl-c to stop)\n", s.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	s.Close()
	return nil
}
