// Command asymnvm-replay replays an operation trace (as produced by
// asymnvm-workload) against a chosen persistent structure on a simulated
// AsymNVM cluster and reports virtual-time throughput and fabric usage.
//
// Usage:
//
//	asymnvm-workload -n 50000 -theta 0.9 -write 10 | \
//	    asymnvm-replay -ds bptree -mode rcb -cache 33554432 -batch 256
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"asymnvm"
	"asymnvm/internal/workload"
)

func main() {
	dsFlag := flag.String("ds", "bptree", "structure: hashtable, skiplist, bst, bptree, mvbst, mvbptree")
	modeFlag := flag.String("mode", "rcb", "naive, r, rc, rcb")
	cacheFlag := flag.Int64("cache", 32<<20, "cache bytes for rc/rcb")
	batchFlag := flag.Int("batch", 256, "batch size for rcb")
	valueCap := flag.Int("vcap", 2048, "inline value capacity (values above it are rejected)")
	flag.Parse()

	var mode asymnvm.Mode
	switch *modeFlag {
	case "naive":
		mode = asymnvm.ModeNaive()
	case "r":
		mode = asymnvm.ModeR()
	case "rc":
		mode = asymnvm.ModeRC(*cacheFlag)
	case "rcb":
		mode = asymnvm.ModeRCB(*cacheFlag, *batchFlag)
	default:
		log.Fatalf("unknown mode %q", *modeFlag)
	}

	cl, err := asymnvm.NewCluster(asymnvm.ClusterConfig{Backends: 1, DeviceBytes: 1 << 30})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()
	client, err := cl.NewClient(1, mode)
	if err != nil {
		log.Fatal(err)
	}
	opts := asymnvm.DSOptions{ValueCap: *valueCap, Buckets: 1 << 16}
	var kv asymnvm.KV
	switch *dsFlag {
	case "hashtable":
		kv, err = client.CreateHashTable("replay", opts)
	case "skiplist":
		kv, err = client.CreateSkipList("replay", opts)
	case "bst":
		kv, err = client.CreateBST("replay", opts)
	case "bptree":
		kv, err = client.CreateBPTree("replay", opts)
	case "mvbst":
		kv, err = client.CreateMVBST("replay", opts)
	case "mvbptree":
		kv, err = client.CreateMVBPTree("replay", opts)
	default:
		log.Fatalf("unknown structure %q", *dsFlag)
	}
	if err != nil {
		log.Fatal(err)
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	ops, puts, gets, hits := 0, 0, 0, 0
	vstart := client.VirtualTime()
	before := client.Stats()
	for sc.Scan() {
		line := sc.Text()
		if len(line) == 0 {
			continue
		}
		var key uint64
		var vlen int
		switch line[0] {
		case 'P':
			if _, err := fmt.Sscanf(line, "P %d %d", &key, &vlen); err != nil {
				log.Fatalf("bad trace line %q: %v", line, err)
			}
			if vlen > *valueCap {
				vlen = *valueCap
			}
			if err := kv.Put(key, workload.Value(key, vlen)); err != nil {
				log.Fatalf("put %d: %v", key, err)
			}
			puts++
		case 'G':
			if _, err := fmt.Sscanf(line, "G %d", &key); err != nil {
				log.Fatalf("bad trace line %q: %v", line, err)
			}
			_, ok, err := kv.Get(key)
			if err != nil {
				log.Fatalf("get %d: %v", key, err)
			}
			if ok {
				hits++
			}
			gets++
		default:
			log.Fatalf("bad trace line %q", line)
		}
		ops++
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if err := kv.Flush(); err != nil {
		log.Fatal(err)
	}
	elapsed := client.VirtualTime() - vstart
	d := client.Stats().Sub(before)
	fmt.Printf("replayed %d ops (%d puts, %d gets, %d found) on %s/%s\n",
		ops, puts, gets, hits, *dsFlag, *modeFlag)
	if elapsed > 0 {
		fmt.Printf("throughput: %.1f KOPS (virtual time %.3f s)\n",
			float64(ops)/(float64(elapsed)/1e9)/1000, float64(elapsed)/1e9)
	}
	fmt.Printf("fabric: %d reads, %d writes, %d atomics; cache hit ratio %.0f%%\n",
		d.RDMARead, d.RDMAWrite, d.RDMAAtomic, d.HitRatio()*100)
}
