// Command asymnvm-bench regenerates the paper's tables and figures on
// the simulated AsymNVM cluster and prints them as text tables.
//
// Usage:
//
//	asymnvm-bench -exp table3,fig6 -scale quick
//	asymnvm-bench -exp all -scale full > results.txt
//	asymnvm-bench -exp pipeline -json BENCH_pipeline.json
//
// Experiments: table2, table3, lockbench, cachebench, fig6, fig7, fig8,
// fig9, fig10, fig11, fig12, fig13, cost, chaos, ablation, pipeline,
// scaleout, tx2pc, multiwriter, recovery, overload, rebalance, hotpath,
// all.
//
// Unlike the rest, hotpath measures host wall-clock ns/op (lock-free
// rings, doorbells, zero-alloc codecs) rather than virtual time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"asymnvm/internal/bench"
	"asymnvm/internal/obshttp"
	"asymnvm/internal/trace"
)

func main() {
	expFlag := flag.String("exp", "table3", "comma-separated experiment ids, or 'all'")
	scaleFlag := flag.String("scale", "quick", "quick or full")
	opsFlag := flag.Int("ops", 0, "override measured operations per cell")
	seedFlag := flag.Int("seed", 0, "override initial population per structure")
	keysFlag := flag.Int("keys", 0, "override workload key-space size")
	jsonFlag := flag.String("json", "", "also write every measured row to this file as JSON")
	httpAddr := flag.String("http", "", "serve live /metrics, /debug/trace and /debug/flame on this address while experiments run")
	pprofFlag := flag.Bool("pprof", false, "also mount /debug/pprof on the -http address (opt-in; pairs with -exp hotpath for wall-clock profiling)")
	flag.Parse()

	if *pprofFlag && *httpAddr == "" {
		fmt.Fprintln(os.Stderr, "asymnvm-bench: -pprof requires -http")
		os.Exit(2)
	}
	if *httpAddr != "" {
		tr := trace.New()
		bench.SetTracer(tr)
		srv := obshttp.New(tr)
		if *pprofFlag {
			srv.EnablePprof()
		}
		if _, addr, err := srv.Start(*httpAddr); err != nil {
			fmt.Fprintf(os.Stderr, "asymnvm-bench: http: %v\n", err)
			os.Exit(2)
		} else {
			fmt.Printf("serving /metrics, /debug/trace, /debug/flame on %s\n", addr)
		}
	}

	sc := bench.QuickScale()
	if *scaleFlag == "full" {
		sc = bench.FullScale()
	}
	if *opsFlag > 0 {
		sc.Ops = *opsFlag
	}
	if *seedFlag > 0 {
		sc.Seed = *seedFlag
	}
	if *keysFlag > 0 {
		sc.Keys = *keysFlag
	}

	wanted := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		wanted[strings.TrimSpace(e)] = true
	}
	all := wanted["all"]

	type driver struct {
		id  string
		run func() ([]bench.Row, error)
	}
	drivers := []driver{
		{"table2", func() ([]bench.Row, error) { return bench.Table2(sc.Ops) }},
		{"lockbench", func() ([]bench.Row, error) { return bench.LockBench(sc.Ops) }},
		{"cachebench", func() ([]bench.Row, error) { return bench.CacheBench(40 * sc.Ops), nil }},
		{"table3", func() ([]bench.Row, error) { return bench.Table3(sc) }},
		{"fig6", func() ([]bench.Row, error) { return bench.Fig6BatchSize(sc, nil) }},
		{"fig7", func() ([]bench.Row, error) { return bench.Fig7CacheSize(sc) }},
		{"fig8", func() ([]bench.Row, error) { return bench.Fig8Readers(sc, 6) }},
		{"fig9", func() ([]bench.Row, error) { return bench.Fig9MultiDS(sc, 7) }},
		{"fig10", func() ([]bench.Row, error) { return bench.Fig10Partitions(sc, 7) }},
		{"fig11", func() ([]bench.Row, error) { return bench.Fig11CPU(sc) }},
		{"fig12", func() ([]bench.Row, error) { return bench.Fig12Zipf(sc) }},
		{"fig13", func() ([]bench.Row, error) { return bench.Fig13Mixes(sc) }},
		{"cost", func() ([]bench.Row, error) { return bench.CostModel(100, nil), nil }},
		{"pipeline", func() ([]bench.Row, error) { return bench.PipelineSweep(sc, nil) }},
		{"scaleout", func() ([]bench.Row, error) { return bench.ScaleoutSweep(sc) }},
		{"tx2pc", func() ([]bench.Row, error) { return bench.Tx2PCSweep(sc) }},
		{"multiwriter", func() ([]bench.Row, error) { return bench.MultiWriterSweep(sc) }},
		{"recovery", func() ([]bench.Row, error) { return bench.RecoverySweep(sc) }},
		{"rebalance", func() ([]bench.Row, error) { return bench.RebalanceSweep(sc) }},
		{"overload", func() ([]bench.Row, error) { return bench.OverloadSweep(sc) }},
		{"hotpath", func() ([]bench.Row, error) { return bench.HotpathSweep() }},
		{"chaos", func() ([]bench.Row, error) { return bench.FaultDegradation(sc) }},
		{"ablation", func() ([]bench.Row, error) {
			rows, err := bench.AblationCachePolicy(sc)
			if err != nil {
				return nil, err
			}
			more, err := bench.AblationVectorWrite(sc)
			if err != nil {
				return nil, err
			}
			return append(rows, more...), nil
		}},
	}

	ranAny := false
	var allRows []bench.Row
	for _, d := range drivers {
		if !all && !wanted[d.id] {
			continue
		}
		ranAny = true
		start := time.Now()
		rows, err := d.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "asymnvm-bench: %s failed: %v\n", d.id, err)
			os.Exit(1)
		}
		allRows = append(allRows, rows...)
		fmt.Print(bench.FormatRows(rows))
		fmt.Printf("(%s finished in %v host time)\n\n", d.id, time.Since(start).Round(time.Millisecond))
	}
	if !ranAny {
		fmt.Fprintf(os.Stderr, "asymnvm-bench: no experiment matched %q\n", *expFlag)
		os.Exit(2)
	}
	if *jsonFlag != "" {
		data, err := json.MarshalIndent(allRows, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "asymnvm-bench: encoding %s: %v\n", *jsonFlag, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonFlag, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "asymnvm-bench: writing %s: %v\n", *jsonFlag, err)
			os.Exit(1)
		}
	}
}
