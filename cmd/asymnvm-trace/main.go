// Command asymnvm-trace runs a traced SmallBank workload on the simulated
// AsymNVM cluster and exports the span trace: a chrome://tracing JSON
// file (load in chrome://tracing or https://ui.perfetto.dev), a text
// flame summary, the per-phase latency histogram table, and the golden
// digest over the deterministic front-end actors.
//
// Usage:
//
//	asymnvm-trace -ops 2000 -out trace.json
//	asymnvm-trace -ops 500 -flame
//	asymnvm-trace -digest            # print the front-end golden digest
//	asymnvm-trace -http :8080        # serve /metrics and /debug/trace
package main

import (
	"flag"
	"fmt"
	"os"

	"asymnvm/internal/bench"
	"asymnvm/internal/obshttp"
	"asymnvm/internal/stats"
)

func main() {
	ops := flag.Int("ops", 1000, "SmallBank transactions to run")
	accounts := flag.Int("accounts", 100, "SmallBank accounts")
	seed := flag.Uint64("seed", 1, "workload seed")
	pipeline := flag.Int("pipeline", 16, "posted-verb send-queue depth")
	out := flag.String("out", "", "write chrome://tracing JSON to this file ('-' for stdout)")
	flame := flag.Bool("flame", false, "print the text flame summary")
	digest := flag.Bool("digest", false, "print the deterministic front-end trace digest")
	httpAddr := flag.String("http", "", "serve /metrics, /debug/trace and /debug/flame on this address and block")
	flag.Parse()

	sc := bench.QuickScale()
	sc.Ops = *ops
	sc.Accounts = *accounts
	res, err := bench.TraceSmallBank(sc, *seed, *pipeline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asymnvm-trace: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("traced %d SmallBank txs: %d virtual ns elapsed on fe001\n", res.Ops, res.Frontend.Clock().Now())
	fmt.Println(res.Frontend.Stats().Snapshot().String())
	if phases := res.Frontend.Stats().PhaseSnapshots(); len(phases) > 0 {
		fmt.Print(stats.FormatPhases(phases))
	}
	if *digest {
		fmt.Printf("frontend trace digest: %s\n", res.Tracer.DigestFor(bench.FrontendActors))
	}
	if *flame {
		fmt.Print(res.Tracer.FlameSummary())
	}
	if *out != "" {
		data := res.Tracer.ChromeJSON()
		if *out == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "asymnvm-trace: writing %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
	if *httpAddr != "" {
		srv := obshttp.New(res.Tracer)
		srv.AddStats("fe001", res.Frontend.Stats())
		_, addr, err := srv.Start(*httpAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asymnvm-trace: http: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("serving /metrics, /debug/trace, /debug/flame on %s\n", addr)
		select {}
	}
}
