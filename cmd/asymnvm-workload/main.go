// Command asymnvm-workload generates operation traces in the formats the
// benchmarks consume: uniform or Zipf-skewed keys, a configurable
// put/get mix, and the industry-trace value-size distribution (64 B–8 KB
// power law) standing in for the proprietary Alibaba trace the paper
// used.
//
// Usage:
//
//	asymnvm-workload -n 100000 -keys 65536 -write 10 -theta 0.99 > trace.txt
//
// Output: one op per line, "P <key> <valueLen>" or "G <key>".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"asymnvm/internal/workload"
)

func main() {
	n := flag.Int("n", 10000, "operations to generate")
	keys := flag.Uint64("keys", 1<<16, "key space size")
	write := flag.Int("write", 50, "put percentage (0-100)")
	theta := flag.Float64("theta", 0, "zipf exponent (0 = uniform)")
	valueLen := flag.Int("vlen", 0, "fixed value length (0 = industry 64B-8KB power law)")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	gen := workload.New(workload.Config{
		Seed: *seed, Keys: *keys, WritePct: *write,
		Theta: *theta, Scramble: *theta > 0, ValueLen: *valueLen,
	})
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i := 0; i < *n; i++ {
		op := gen.Next()
		if op.Kind == workload.OpPut {
			fmt.Fprintf(w, "P %d %d\n", op.Key, op.ValueLen)
		} else {
			fmt.Fprintf(w, "G %d\n", op.Key)
		}
	}
}
