module asymnvm

go 1.22
